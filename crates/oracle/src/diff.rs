//! The differential harness: production schedulers vs. the oracle.
//!
//! [`differential_gap`] runs the unhinted and hinted list schedulers and
//! the oracle over the same seeded regions and aggregates total cycles;
//! [`modulo_differential`] does the same for loops via the II sandwich.
//! The aggregate ratios become the `sched/optimality_gap` /
//! `sched/optimality_gap_hinted` / `sched/optimality_gap_modulo` gauges,
//! and any inversion of the invariants — an oracle schedule failing
//! replay verification, a production schedule strictly shorter than the
//! oracle's, a hinted schedule failing verification, an II escaping its
//! sandwich — increments `sched/oracle_violations`, which CI requires to
//! be exactly zero.

use mdes_core::{CheckStats, CompiledMdes};
use mdes_sched::{Block, DepGraph, ListScheduler, LoopBlock};
use mdes_telemetry::Telemetry;

use crate::OracleScheduler;

/// How many violation descriptions are retained verbatim (the count is
/// always exact; the details are a debugging aid).
const MAX_DETAILS: usize = 8;

/// Aggregated differential results over any number of regions, loops and
/// machines (reports [`GapReport::merge`] into each other).
#[derive(Clone, Debug, Default)]
pub struct GapReport {
    /// Regions the oracle scheduled.
    pub regions: usize,
    /// Regions skipped for being empty or larger than the oracle's cap.
    pub skipped: usize,
    /// Regions whose minimality was proved (search ran to completion).
    pub proved: usize,
    /// Regions where the oracle beat the production list scheduler.
    pub improved: usize,
    /// Total oracle schedule cycles.
    pub oracle_cycles: u64,
    /// Total unhinted list-scheduler cycles over the same regions.
    pub list_cycles: u64,
    /// Total hinted list-scheduler cycles over the same regions.
    pub hinted_cycles: u64,
    /// Search nodes explored.
    pub nodes: u64,
    /// Invariant inversions (must be zero on a healthy build).
    pub violations: u64,
    /// Up to [`MAX_DETAILS`] violation descriptions.
    pub violation_details: Vec<String>,
    /// Loops the II sandwich was tightened for.
    pub loops: usize,
    /// Loops skipped (empty or oversized bodies).
    pub loops_skipped: usize,
    /// Sum of classic MII lower bounds.
    pub mii_sum: u64,
    /// Sum of oracle-witnessed IIs.
    pub oracle_ii_sum: u64,
    /// Sum of production `ModuloScheduler` IIs.
    pub production_ii_sum: u64,
}

impl GapReport {
    /// Unhinted optimality gap: total list cycles ÷ total oracle cycles
    /// (1.0 when nothing was measured; never below 1.0 on a healthy
    /// build).
    pub fn gap(&self) -> f64 {
        ratio(self.list_cycles, self.oracle_cycles)
    }

    /// Hinted optimality gap: total hinted cycles ÷ total oracle cycles.
    pub fn hinted_gap(&self) -> f64 {
        ratio(self.hinted_cycles, self.oracle_cycles)
    }

    /// Modulo gap: total production IIs ÷ total oracle-witnessed IIs.
    pub fn modulo_gap(&self) -> f64 {
        ratio(self.production_ii_sum, self.oracle_ii_sum)
    }

    /// Folds `other` into `self` (multi-machine aggregation).
    pub fn merge(&mut self, other: &GapReport) {
        self.regions += other.regions;
        self.skipped += other.skipped;
        self.proved += other.proved;
        self.improved += other.improved;
        self.oracle_cycles += other.oracle_cycles;
        self.list_cycles += other.list_cycles;
        self.hinted_cycles += other.hinted_cycles;
        self.nodes += other.nodes;
        self.violations += other.violations;
        for detail in &other.violation_details {
            if self.violation_details.len() < MAX_DETAILS {
                self.violation_details.push(detail.clone());
            }
        }
        self.loops += other.loops;
        self.loops_skipped += other.loops_skipped;
        self.mii_sum += other.mii_sum;
        self.oracle_ii_sum += other.oracle_ii_sum;
        self.production_ii_sum += other.production_ii_sum;
    }

    /// Publishes the gauges and counters described in
    /// `docs/telemetry.md`.  `sched/oracle_violations` is always
    /// emitted, even at zero, so CI can grep for the exact value.
    pub fn publish(&self, tel: &Telemetry) {
        tel.gauge_set("sched/optimality_gap", self.gap());
        tel.gauge_set("sched/optimality_gap_hinted", self.hinted_gap());
        tel.gauge_set("sched/optimality_gap_modulo", self.modulo_gap());
        tel.counter_add("sched/oracle_regions", self.regions as u64);
        tel.counter_add("sched/oracle_skipped", self.skipped as u64);
        tel.counter_add("sched/oracle_proved", self.proved as u64);
        tel.counter_add("sched/oracle_improved", self.improved as u64);
        tel.counter_add("sched/oracle_loops", self.loops as u64);
        tel.counter_add("sched/oracle_nodes", self.nodes);
        tel.counter_add("sched/oracle_violations", self.violations);
    }

    fn violation(&mut self, detail: String) {
        self.violations += 1;
        if self.violation_details.len() < MAX_DETAILS {
            self.violation_details.push(detail);
        }
    }
}

fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        1.0
    } else {
        numerator as f64 / denominator as f64
    }
}

/// Runs the acyclic differential over `blocks`: oracle vs. the unhinted
/// and hinted list schedulers, verifying every oracle and hinted
/// schedule by RU-map replay and checking that no production schedule is
/// ever shorter than the oracle's.
///
/// `stats` accumulates the oracle's search probes.
pub fn differential_gap(
    mdes: &CompiledMdes,
    blocks: &[Block],
    oracle: &OracleScheduler,
    stats: &mut CheckStats,
) -> GapReport {
    let mut report = GapReport::default();
    let mut production_stats = CheckStats::new();
    for (index, block) in blocks.iter().enumerate() {
        let n = block.ops.len();
        if n == 0 || n > oracle.max_ops() {
            report.skipped += 1;
            continue;
        }
        let Some(outcome) = oracle.schedule(block, stats) else {
            report.skipped += 1;
            continue;
        };
        report.regions += 1;
        report.proved += outcome.proved as usize;
        report.improved += outcome.improved as usize;
        report.nodes += outcome.nodes;

        let graph = DepGraph::build(block, mdes);
        if let Err(err) = outcome.schedule.verify(&graph, mdes) {
            report.violation(format!(
                "region {index}: oracle schedule fails replay: {err}"
            ));
        }
        let list = ListScheduler::new(mdes).schedule(block, &mut production_stats);
        let hinted = ListScheduler::new(mdes)
            .with_hints(true)
            .schedule(block, &mut production_stats);
        if let Err(err) = hinted.verify(&graph, mdes) {
            report.violation(format!(
                "region {index}: hinted schedule fails replay: {err}"
            ));
        }
        if list.length < outcome.schedule.length {
            report.violation(format!(
                "region {index}: list schedule ({}) beats the oracle ({})",
                list.length, outcome.schedule.length
            ));
        }
        if hinted.length < outcome.schedule.length {
            report.violation(format!(
                "region {index}: hinted schedule ({}) beats the oracle ({})",
                hinted.length, outcome.schedule.length
            ));
        }
        report.oracle_cycles += outcome.schedule.length as u64;
        report.list_cycles += list.length as u64;
        report.hinted_cycles += hinted.length as u64;
    }
    report
}

/// Runs the modulo differential over `loops`: for each loop the II
/// sandwich `MII ≤ II_oracle ≤ II_prod` is asserted and the oracle's
/// witness schedule is replay-verified.
pub fn modulo_differential(
    mdes: &CompiledMdes,
    loops: &[LoopBlock],
    oracle: &OracleScheduler,
    stats: &mut CheckStats,
) -> GapReport {
    let mut report = GapReport::default();
    for (index, looped) in loops.iter().enumerate() {
        let Some(outcome) = oracle.min_ii(looped, stats) else {
            report.loops_skipped += 1;
            continue;
        };
        report.loops += 1;
        report.nodes += outcome.nodes;
        if let Err(err) = outcome.schedule.verify(looped, mdes) {
            report.violation(format!("loop {index}: II witness fails replay: {err}"));
        }
        if outcome.ii < outcome.mii {
            report.violation(format!(
                "loop {index}: oracle II {} below MII {}",
                outcome.ii, outcome.mii
            ));
        }
        if outcome.ii > outcome.production_ii {
            report.violation(format!(
                "loop {index}: oracle II {} above production II {}",
                outcome.ii, outcome.production_ii
            ));
        }
        report.mii_sum += outcome.mii as u64;
        report.oracle_ii_sum += outcome.ii as u64;
        report.production_ii_sum += outcome.production_ii as u64;
    }
    report
}

/// Turns acyclic workload blocks into loop bodies for the modulo
/// differential: terminating branch / serializing operations are
/// dropped (a software-pipelined body has no interior control flow) and
/// a distance-1 carried dependence from the last remaining operation to
/// the first closes the recurrence.  Blocks left empty are skipped.
pub fn loops_from_blocks(mdes: &CompiledMdes, blocks: &[Block]) -> Vec<LoopBlock> {
    blocks
        .iter()
        .filter_map(|block| {
            let mut body = Block::new();
            for op in &block.ops {
                let flags = mdes.class(op.class).flags;
                if flags.branch || flags.serial {
                    continue;
                }
                body.push(op.clone());
            }
            let n = body.ops.len();
            if n == 0 {
                return None;
            }
            Some(LoopBlock {
                body,
                carried: vec![(n - 1, 0, 1, 1)],
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::UsageEncoding;
    use mdes_sched::{Op, Reg};

    fn compile(src: &str) -> CompiledMdes {
        let spec = mdes_lang::compile(src).unwrap();
        CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap()
    }

    #[test]
    fn gap_report_aggregates_and_publishes() {
        let mdes = compile(
            "
            resource ALU[2];
            or_tree AnyAlu = first_of(for a in 0..2: { ALU[a] @ 0 });
            class alu { constraint = AnyAlu; latency = 1; }
        ",
        );
        let alu = mdes.class_by_name("alu").unwrap();
        let blocks: Vec<Block> = (0..4)
            .map(|b| {
                (0..4)
                    .map(|i| Op::new(alu, vec![Reg(b * 8 + i)], vec![]))
                    .collect()
            })
            .collect();
        let oracle = OracleScheduler::new(&mdes);
        let mut stats = CheckStats::new();
        let mut report = differential_gap(&mdes, &blocks, &oracle, &mut stats);
        assert_eq!(report.regions, 4);
        assert_eq!(report.violations, 0, "{:?}", report.violation_details);
        assert!(report.gap() >= 1.0);
        assert!(report.hinted_gap() >= 1.0);

        let loops = loops_from_blocks(&mdes, &blocks);
        let modulo = modulo_differential(&mdes, &loops, &oracle, &mut stats);
        assert_eq!(modulo.loops, 4);
        assert_eq!(modulo.violations, 0, "{:?}", modulo.violation_details);
        report.merge(&modulo);

        let tel = Telemetry::new();
        report.publish(&tel);
        let snapshot = tel.report();
        assert_eq!(snapshot.counter("sched/oracle_violations"), Some(0));
        assert_eq!(snapshot.counter("sched/oracle_regions"), Some(4));
        assert!(snapshot.gauge("sched/optimality_gap").unwrap() >= 1.0);
    }

    #[test]
    fn oversized_blocks_are_counted_not_scheduled() {
        let mdes = compile(
            "
            resource ALU;
            or_tree T = first_of({ ALU @ 0 });
            class alu { constraint = T; latency = 1; }
        ",
        );
        let alu = mdes.class_by_name("alu").unwrap();
        let big: Block = (0..6).map(|i| Op::new(alu, vec![Reg(i)], vec![])).collect();
        let oracle = OracleScheduler::new(&mdes).with_max_ops(4);
        let mut stats = CheckStats::new();
        let report = differential_gap(&mdes, &[big], &oracle, &mut stats);
        assert_eq!(report.regions, 0);
        assert_eq!(report.skipped, 1);
        assert_eq!(report.gap(), 1.0);
    }
}
