//! Exact-search tightening of the modulo scheduler's II sandwich.
//!
//! For a loop the production `ModuloScheduler` yields some initiation
//! interval `II_prod ≥ MII`.  [`OracleScheduler::min_ii`] searches every
//! II in `[MII, II_prod)` with a windowed exact search (wrap-around
//! RU-map reservations, per-OR-tree option branching) and returns the
//! smallest II with a verified witness schedule.  The guarantee is a
//! *sandwich*, not unconditional optimality: `MII ≤ II_oracle ≤ II_prod`
//! always holds (the production schedule itself witnesses the upper
//! end), and `II_oracle < II_prod` whenever the windowed search finds a
//! tighter witness.  The window restriction — each operation is tried in
//! the `ii` cycles starting at its dependence-earliest slot — is the
//! standard modulo-scheduling placement range; a feasible II outside it
//! is possible in principle, which is why the result is published as a
//! bound, not a proof (see `docs/oracle.md`).

use mdes_core::{CheckStats, CompiledMdes, RuMap};
use mdes_sched::{DepGraph, LoopBlock, ModuloSchedule, ModuloScheduler};

use crate::{OracleScheduler, UNPLACED};

/// The result of one exact min-II search.
#[derive(Clone, Debug)]
pub struct IiOutcome {
    /// The classic lower bound: max(resource MII, recurrence MII).
    pub mii: i32,
    /// The smallest II with a verified witness: the windowed-search
    /// result, or the production II when no tighter witness exists.
    pub ii: i32,
    /// The production `ModuloScheduler`'s II on the same loop.
    pub production_ii: i32,
    /// A schedule witnessing [`IiOutcome::ii`]; passes
    /// [`mdes_sched::ModuloSchedule::verify`].
    pub schedule: ModuloSchedule,
    /// Search nodes explored across all tried IIs.
    pub nodes: u64,
    /// False when some II below the result hit the node budget before
    /// its window was exhausted (the sandwich still holds).
    pub exact: bool,
}

impl<'a> OracleScheduler<'a> {
    /// Tightens the II sandwich for `looped`: searches every II in
    /// `[MII, II_prod)` exactly (within the placement windows) and
    /// returns the smallest verified II, or `None` when the loop body is
    /// empty or exceeds [`OracleScheduler::max_ops`].
    pub fn min_ii(&self, looped: &LoopBlock, stats: &mut CheckStats) -> Option<IiOutcome> {
        let n = looped.body.ops.len();
        if n == 0 || n > self.max_ops {
            return None;
        }
        let scheduler = ModuloScheduler::new(self.mdes);
        let mut production_stats = CheckStats::new();
        let production = scheduler.schedule(looped, &mut production_stats);
        let mii = scheduler
            .res_mii(looped)
            .max(scheduler.rec_mii(looped))
            .max(1);

        let graph = DepGraph::build(&looped.body, self.mdes);
        let preds: Vec<Vec<(usize, i32)>> = graph
            .preds
            .iter()
            .map(|edges| edges.iter().map(|e| (e.from, e.latency)).collect())
            .collect();

        let mut nodes = 0u64;
        let mut exact = true;
        for ii in mii..production.ii {
            let mut search = ModSearch {
                mdes: self.mdes,
                looped,
                preds: &preds,
                ii,
                ru: RuMap::new(),
                cycles: vec![UNPLACED; n],
                sel: vec![Vec::new(); n],
                nodes: 0,
                node_limit: self.node_limit,
                bailed: false,
                stats,
            };
            let found = search.place(0);
            nodes += search.nodes;
            if search.bailed {
                exact = false;
            }
            if found {
                let schedule = ModuloSchedule {
                    ii,
                    cycles: search.cycles,
                    selections: search.sel,
                };
                return Some(IiOutcome {
                    mii,
                    ii,
                    production_ii: production.ii,
                    schedule,
                    nodes,
                    exact,
                });
            }
        }
        Some(IiOutcome {
            mii,
            ii: production.ii,
            production_ii: production.ii,
            schedule: production,
            nodes,
            exact,
        })
    }
}

/// Feasibility search at one fixed II.  Operations are placed in source
/// index order (topological for the intra-iteration DAG); each is tried
/// in the `ii` cycles starting at its earliest dependence-feasible slot,
/// clamped by loop-carried edges whose other endpoint is already placed;
/// reservations land at `(cycle + check.time) mod ii`, exactly the
/// production scheduler's wrap-around replay.
struct ModSearch<'a, 'b> {
    mdes: &'a CompiledMdes,
    looped: &'a LoopBlock,
    preds: &'a [Vec<(usize, i32)>],
    ii: i32,
    ru: RuMap,
    cycles: Vec<i32>,
    sel: Vec<Vec<u32>>,
    nodes: u64,
    node_limit: u64,
    bailed: bool,
    stats: &'b mut CheckStats,
}

impl ModSearch<'_, '_> {
    fn place(&mut self, index: usize) -> bool {
        if index == self.looped.body.ops.len() {
            return true;
        }
        let mut base = 0;
        for &(from, latency) in &self.preds[index] {
            base = base.max(self.cycles[from] + latency);
        }
        // Loop-carried edges against already-placed endpoints narrow the
        // candidate range: as a consumer, `cycle ≥ from + lat − ii·dist`;
        // as a producer, `cycle ≤ to + ii·dist − lat`.
        let mut lo = base;
        let mut hi = base + self.ii - 1;
        for &(from, to, latency, distance) in &self.looped.carried {
            let span = self.ii * distance as i32;
            if to == index && self.cycles[from] != UNPLACED {
                lo = lo.max(self.cycles[from] + latency - span);
            }
            if from == index && self.cycles[to] != UNPLACED {
                hi = hi.min(self.cycles[to] + span - latency);
            }
        }
        for cycle in lo..=hi {
            if self.options(index, cycle, 0) {
                return true;
            }
            if self.bailed {
                return false;
            }
        }
        false
    }

    fn options(&mut self, index: usize, cycle: i32, tree_pos: usize) -> bool {
        self.nodes += 1;
        if self.nodes > self.node_limit {
            self.bailed = true;
            return false;
        }
        let mdes = self.mdes;
        let class_trees = &mdes.class(self.looped.body.ops[index].class).or_trees;
        if tree_pos == class_trees.len() {
            self.cycles[index] = cycle;
            if self.place(index + 1) {
                return true;
            }
            self.cycles[index] = UNPLACED;
            return false;
        }
        let tree = &mdes.or_trees()[class_trees[tree_pos] as usize];
        for (k, &opt) in tree.options.iter().enumerate() {
            let checks = mdes.option_checks(opt as usize).as_slice();
            if tree.options[..k]
                .iter()
                .any(|&prev| mdes.option_checks(prev as usize).as_slice() == checks)
            {
                continue;
            }
            if self.option_fits_modulo(opt, cycle) {
                self.apply_modulo(opt, cycle, true);
                self.sel[index].push(opt);
                if self.options(index, cycle, tree_pos + 1) {
                    return true;
                }
                self.sel[index].pop();
                self.apply_modulo(opt, cycle, false);
            }
            if self.bailed {
                return false;
            }
        }
        false
    }

    fn option_fits_modulo(&mut self, opt: u32, cycle: i32) -> bool {
        self.stats.count_option();
        for check in self.mdes.option_checks(opt as usize) {
            self.stats.count_check();
            let slot = (cycle + check.time).rem_euclid(self.ii);
            if !self.ru.is_free(slot, check.mask) {
                return false;
            }
        }
        true
    }

    fn apply_modulo(&mut self, opt: u32, cycle: i32, set: bool) {
        for check in self.mdes.option_checks(opt as usize) {
            let slot = (cycle + check.time).rem_euclid(self.ii);
            if set {
                self.ru.reserve(slot, check.mask);
            } else {
                self.ru.release(slot, check.mask);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::UsageEncoding;
    use mdes_sched::{Block, Op, Reg};

    fn single_alu() -> CompiledMdes {
        let spec = mdes_lang::compile(
            "
            resource ALU;
            or_tree T = first_of({ ALU @ 0 });
            class alu { constraint = T; latency = 1; }
        ",
        )
        .unwrap();
        CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap()
    }

    #[test]
    fn min_ii_is_sandwiched_and_verified() {
        let mdes = single_alu();
        let alu = mdes.class_by_name("alu").unwrap();
        let mut body = Block::new();
        body.push(Op::new(alu, vec![Reg(1)], vec![Reg(9)]));
        body.push(Op::new(alu, vec![Reg(2)], vec![Reg(1)]));
        body.push(Op::new(alu, vec![Reg(3)], vec![Reg(2)]));
        let looped = LoopBlock {
            body,
            carried: vec![(2, 0, 1, 1)],
        };
        let mut stats = CheckStats::new();
        let outcome = OracleScheduler::new(&mdes)
            .min_ii(&looped, &mut stats)
            .unwrap();
        // One ALU, three ops → resource MII 3; the chain + carried edge
        // also forces recurrence II 3 ÷ 1 wait: res_mii dominates.
        assert_eq!(outcome.mii, 3);
        assert!(outcome.ii >= outcome.mii);
        assert!(outcome.ii <= outcome.production_ii);
        outcome.schedule.verify(&looped, &mdes).unwrap();
    }

    #[test]
    fn min_ii_refuses_oversized_bodies() {
        let mdes = single_alu();
        let alu = mdes.class_by_name("alu").unwrap();
        let body: Block = (0..3).map(|i| Op::new(alu, vec![Reg(i)], vec![])).collect();
        let looped = LoopBlock {
            body,
            carried: vec![],
        };
        let mut stats = CheckStats::new();
        assert!(OracleScheduler::new(&mdes)
            .with_max_ops(2)
            .min_ii(&looped, &mut stats)
            .is_none());
    }
}
