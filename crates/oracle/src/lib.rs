//! Exact scheduling as a differential referee.
//!
//! The production schedulers (`mdes-sched`) are greedy: the list
//! scheduler takes the first feasible cycle and the checker's first
//! feasible option per OR-tree, and the hint-first fast path may legally
//! pick lower-priority options.  Nothing in that pipeline says how far
//! the result is from optimal.  This crate answers that with a small
//! branch-and-bound scheduler over the *same* `CompiledMdes` query
//! surface ([`mdes_core::Checker::option_fits`] /
//! [`mdes_core::Checker::apply_option_at`], RU-map replay) that provably
//! finds a minimum-length schedule for regions up to
//! [`OracleScheduler::max_ops`] operations.
//!
//! Three layers:
//!
//! * [`OracleScheduler::schedule`] — branch-and-bound with memoized
//!   lower bounds and deterministic tie-breaking (see `docs/oracle.md`
//!   for the completeness and determinism arguments);
//! * [`exhaustive_min_length`] — an independent brute-force enumerator
//!   with none of the pruning machinery, used by the property tests to
//!   cross-check the branch-and-bound result;
//! * [`differential_gap`] / [`modulo_differential`] — the harness that
//!   runs production schedulers against the oracle on seeded regions and
//!   aggregates the `sched/optimality_gap` figures.
//!
//! # Example
//!
//! ```
//! use mdes_core::{CheckStats, CompiledMdes, UsageEncoding};
//! use mdes_oracle::OracleScheduler;
//! use mdes_sched::{Block, Op, Reg};
//!
//! let spec = mdes_lang::compile("
//!     resource ALU[2];
//!     or_tree AnyAlu = first_of(for a in 0..2: { ALU[a] @ 0 });
//!     class alu { constraint = AnyAlu; latency = 1; }
//! ").unwrap();
//! let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
//! let alu = mdes.class_by_name("alu").unwrap();
//! let mut block = Block::new();
//! for i in 0..4 {
//!     block.push(Op::new(alu, vec![Reg(i)], vec![]));
//! }
//! let mut stats = CheckStats::new();
//! let outcome = OracleScheduler::new(&mdes).schedule(&block, &mut stats).unwrap();
//! assert_eq!(outcome.schedule.length, 2); // 4 independent ops, 2 ALUs
//! assert!(outcome.proved);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod modulo;

pub use diff::{differential_gap, loops_from_blocks, modulo_differential, GapReport};
pub use modulo::IiOutcome;

use mdes_core::{CheckStats, Checker, Choice, ClassId, CompiledMdes, RuMap};
use mdes_sched::{Block, DepGraph, ListScheduler, Schedule, ScheduledOp};

/// Sentinel for "operation not placed yet" during search.
const UNPLACED: i32 = i32::MIN;

/// Default region-size ceiling: beyond this the search space is no longer
/// guaranteed to be cheap, so larger regions are skipped (and counted) by
/// the differential harness instead of scheduled.
pub const DEFAULT_MAX_OPS: usize = 16;

/// Default search-node budget.  The bundled machines prove optimality in
/// well under a thousand nodes per region; the budget is a backstop
/// against pathological descriptions, not a tuning knob.
pub const DEFAULT_NODE_LIMIT: u64 = 20_000_000;

/// The result of one exact scheduling run.
#[derive(Clone, Debug)]
pub struct OracleOutcome {
    /// A minimum-length schedule (when [`OracleOutcome::proved`]);
    /// always verifies under [`mdes_sched::Schedule::verify`] and is
    /// never longer than the production list schedule.
    pub schedule: Schedule,
    /// Branch-and-bound nodes explored (0 when the root lower bound
    /// already proved the list schedule optimal).
    pub nodes: u64,
    /// True when the search ran to completion, i.e. the returned length
    /// is provably minimal.  False only if the node budget was hit, in
    /// which case the schedule is still valid and still no longer than
    /// the production schedule, but may not be optimal.
    pub proved: bool,
    /// True when the search found a schedule strictly shorter than the
    /// production list schedule it was seeded with.
    pub improved: bool,
}

impl OracleOutcome {
    /// Schedule length in cycles.
    pub fn length(&self) -> i32 {
        self.schedule.length
    }
}

/// A branch-and-bound exact scheduler over `CompiledMdes` queries.
///
/// Deterministic by construction: operations are placed in a fixed
/// topological order (critical-path height descending, source index
/// ascending), candidate cycles are tried ascending, OR-tree options are
/// tried in priority order, and the incumbent is replaced only on
/// *strict* improvement — so pruning (which only discards subtrees that
/// provably cannot strictly improve) never changes the returned
/// schedule.  Same seed, same block, same machine → byte-identical
/// result.
#[derive(Clone, Debug)]
pub struct OracleScheduler<'a> {
    mdes: &'a CompiledMdes,
    max_ops: usize,
    node_limit: u64,
}

impl<'a> OracleScheduler<'a> {
    /// Creates an oracle over `mdes` with the default limits.
    pub fn new(mdes: &'a CompiledMdes) -> OracleScheduler<'a> {
        OracleScheduler {
            mdes,
            max_ops: DEFAULT_MAX_OPS,
            node_limit: DEFAULT_NODE_LIMIT,
        }
    }

    /// Sets the region-size ceiling (regions larger than this are
    /// refused with `None` rather than searched).
    pub fn with_max_ops(mut self, max_ops: usize) -> OracleScheduler<'a> {
        self.max_ops = max_ops;
        self
    }

    /// Sets the search-node budget.
    pub fn with_node_limit(mut self, node_limit: u64) -> OracleScheduler<'a> {
        self.node_limit = node_limit;
        self
    }

    /// The region-size ceiling.
    pub fn max_ops(&self) -> usize {
        self.max_ops
    }

    /// The compiled MDES this oracle schedules against.
    pub fn mdes(&self) -> &'a CompiledMdes {
        self.mdes
    }

    /// Finds a minimum-length schedule for `block`, or `None` when the
    /// block exceeds [`OracleScheduler::max_ops`].
    ///
    /// The search is seeded with the production list schedule as the
    /// incumbent, so the returned length never exceeds the list
    /// scheduler's — by construction, not by luck.  When the root lower
    /// bound (critical path ∨ resource count) already equals the
    /// incumbent length, the list schedule is returned as proved optimal
    /// with zero search nodes.
    ///
    /// `stats` counts the option probes and resource checks the *search*
    /// performs (the incumbent seeding run keeps its own private stats,
    /// so production accounting is not conflated with oracle accounting).
    pub fn schedule(&self, block: &Block, stats: &mut CheckStats) -> Option<OracleOutcome> {
        let n = block.ops.len();
        if n > self.max_ops {
            return None;
        }
        let mut seed_stats = CheckStats::new();
        let incumbent = ListScheduler::new(self.mdes).schedule(block, &mut seed_stats);
        if n == 0 {
            return Some(OracleOutcome {
                schedule: incumbent,
                nodes: 0,
                proved: true,
                improved: false,
            });
        }

        let graph = DepGraph::build(block, self.mdes);
        let heights = graph.heights();

        // Dependence-only earliest starts (index order is topological).
        let mut asap = vec![0i32; n];
        for i in 0..n {
            for edge in &graph.preds[i] {
                asap[i] = asap[i].max(asap[edge.from] + edge.latency);
            }
        }
        let crit_lb = (0..n).map(|i| asap[i] + heights[i] + 1).max().unwrap_or(1);
        let root_lb = crit_lb.max(resource_lower_bound(self.mdes, block));
        if incumbent.length <= root_lb {
            return Some(OracleOutcome {
                schedule: incumbent,
                nodes: 0,
                proved: true,
                improved: false,
            });
        }

        let classes: Vec<ClassId> = block.ops.iter().map(|op| op.class).collect();
        let preds: Vec<Vec<(usize, i32)>> = graph
            .preds
            .iter()
            .map(|edges| edges.iter().map(|e| (e.from, e.latency)).collect())
            .collect();
        let mut search = Search {
            mdes: self.mdes,
            checker: Checker::new(self.mdes),
            order: placement_order(&graph, &heights),
            classes,
            heights,
            preds,
            est_buf: vec![0; n],
            cycles: vec![UNPLACED; n],
            sel: vec![Vec::new(); n],
            best_len: incumbent.length,
            best_cycles: incumbent.cycles(),
            best_sel: incumbent
                .ops
                .iter()
                .map(|s| s.choice.selected.clone())
                .collect(),
            root_lb,
            nodes: 0,
            node_limit: self.node_limit,
            bailed: false,
            ru: RuMap::new(),
            stats,
        };
        search.dfs(0, 0);

        let improved = search.best_len < incumbent.length;
        let nodes = search.nodes;
        let proved = !search.bailed;
        let schedule = if improved {
            let length = search.best_len;
            let ops: Vec<ScheduledOp> = (0..n)
                .map(|i| ScheduledOp {
                    cycle: search.best_cycles[i],
                    choice: Choice {
                        class: block.ops[i].class,
                        time: search.best_cycles[i],
                        selected: search.best_sel[i].clone(),
                    },
                })
                .collect();
            Schedule {
                ops,
                attempts: vec![1; n],
                length,
            }
        } else {
            incumbent
        };
        Some(OracleOutcome {
            schedule,
            nodes,
            proved,
            improved,
        })
    }
}

/// The placement order: Kahn's algorithm picking, among dependence-ready
/// operations, the greatest critical-path height with source index as
/// the deterministic tie-break.  This matches the list scheduler's
/// priority so the incumbent prunes early, and is topological so every
/// predecessor is placed before its consumer.
fn placement_order(graph: &DepGraph, heights: &[i32]) -> Vec<usize> {
    let n = graph.num_ops;
    let mut remaining: Vec<usize> = (0..n).map(|i| graph.preds[i].len()).collect();
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut pick = usize::MAX;
        for i in 0..n {
            if !placed[i] && remaining[i] == 0 && (pick == usize::MAX || heights[i] > heights[pick])
            {
                pick = i;
            }
        }
        debug_assert!(pick != usize::MAX, "dependence graph must be acyclic");
        placed[pick] = true;
        order.push(pick);
        for edge in &graph.succs[pick] {
            remaining[edge.to] -= 1;
        }
    }
    order
}

/// A resource-count lower bound on schedule length, the max of two
/// counting arguments:
///
/// * **mandatory bits** — if `k` operations each *must* occupy resource
///   bit `b` (the bit appears in every option of one of their OR-trees),
///   bit `b` is busy on at least `k` distinct cycles, and a schedule of
///   length `L` only spans `L + max_check_time − min_check_time` busy
///   cycles;
/// * **tree capacity** — two operations issuing in the same cycle cannot
///   hold the same option of the same OR-tree (identical reservations
///   collide), so at most `|options|` operations demanding a tree issue
///   per cycle: `k` demands need `⌈k / |options|⌉` cycles.  Trees with a
///   check-free option impose nothing.
fn resource_lower_bound(mdes: &CompiledMdes, block: &Block) -> i32 {
    let mut per_bit = [0i32; 64];
    let mut tree_demand = vec![0usize; mdes.or_trees().len()];
    for op in &block.ops {
        let class = mdes.class(op.class);
        let mut mandatory = 0u64;
        for &tree_idx in &class.or_trees {
            let tree = &mdes.or_trees()[tree_idx as usize];
            if tree.options.is_empty() {
                continue;
            }
            tree_demand[tree_idx as usize] += 1;
            let mut tree_mand = !0u64;
            for &opt in &tree.options {
                tree_mand &= mdes.option_checks(opt as usize).total_mask();
            }
            mandatory |= tree_mand;
        }
        while mandatory != 0 {
            let bit = mandatory.trailing_zeros() as usize;
            per_bit[bit] += 1;
            mandatory &= mandatory - 1;
        }
    }
    let busiest = per_bit.iter().copied().max().unwrap_or(0);
    let mut bound = busiest - (mdes.max_check_time() - mdes.min_check_time());
    for (tree_idx, &demand) in tree_demand.iter().enumerate() {
        if demand == 0 {
            continue;
        }
        let tree = &mdes.or_trees()[tree_idx];
        if tree
            .options
            .iter()
            .any(|&opt| mdes.option_checks(opt as usize).is_empty())
        {
            continue;
        }
        bound = bound.max(demand.div_ceil(tree.options.len()) as i32);
    }
    bound
}

/// The branch-and-bound state.  Lower bounds are memoized where they are
/// pure functions of the region (`heights`, computed once) and
/// incrementally recomputed where they depend on partial placements
/// (`est_buf`, the propagated earliest starts).
struct Search<'a, 'b> {
    mdes: &'a CompiledMdes,
    checker: Checker<'a>,
    order: Vec<usize>,
    classes: Vec<ClassId>,
    heights: Vec<i32>,
    preds: Vec<Vec<(usize, i32)>>,
    est_buf: Vec<i32>,
    cycles: Vec<i32>,
    sel: Vec<Vec<u32>>,
    best_len: i32,
    best_cycles: Vec<i32>,
    best_sel: Vec<Vec<u32>>,
    root_lb: i32,
    nodes: u64,
    node_limit: u64,
    bailed: bool,
    ru: RuMap,
    stats: &'b mut CheckStats,
}

impl Search<'_, '_> {
    /// True when no further search can help: the incumbent already
    /// matches the root lower bound (proved optimal) or the node budget
    /// is exhausted.
    fn finished(&self) -> bool {
        self.bailed || self.best_len <= self.root_lb
    }

    fn dfs(&mut self, pos: usize, makespan: i32) {
        if self.finished() {
            return;
        }
        if pos == self.order.len() {
            // Complete assignment.  Per-operation cycle ceilings were
            // checked against the incumbent *at placement time*, so a
            // completion is at worst equal to `best_len`: when the final
            // operation's option loop lands an incumbent, its sibling
            // options at the same cycle complete again at the same
            // makespan.  Keep the first incumbent on ties — that is the
            // deterministic tie-break.
            debug_assert!(makespan <= self.best_len);
            if makespan < self.best_len {
                self.best_len = makespan;
                self.best_cycles.copy_from_slice(&self.cycles);
                for (dst, src) in self.best_sel.iter_mut().zip(&self.sel) {
                    dst.clone_from(src);
                }
            }
            return;
        }
        let op = self.order[pos];
        let mut est = 0;
        for &(from, latency) in &self.preds[op] {
            est = est.max(self.cycles[from] + latency);
        }
        let mut cycle = est;
        // Ceiling: a schedule strictly shorter than the incumbent has
        // `cycle + heights[op] + 1 ≤ best_len − 1` for every operation.
        // `best_len` shrinks as incumbents land, so re-test each lap.
        while cycle + self.heights[op] + 2 <= self.best_len {
            if self.lower_bound_with(pos, op, cycle, makespan) < self.best_len {
                self.enter(pos, op, cycle, 0, makespan.max(cycle + 1));
            }
            if self.finished() {
                return;
            }
            cycle += 1;
        }
    }

    /// The propagated critical-path lower bound with `op` pinned at
    /// `cycle`: earliest starts flow through the unplaced suffix of the
    /// placement order (which is topological, so every predecessor's
    /// bound is available when needed).
    fn lower_bound_with(&mut self, pos: usize, op: usize, cycle: i32, makespan: i32) -> i32 {
        let mut lb = makespan.max(cycle + self.heights[op] + 1);
        self.est_buf[op] = cycle;
        for idx in pos + 1..self.order.len() {
            let j = self.order[idx];
            let mut est = 0;
            for &(from, latency) in &self.preds[j] {
                let known = if self.cycles[from] != UNPLACED {
                    self.cycles[from]
                } else {
                    self.est_buf[from]
                };
                est = est.max(known + latency);
            }
            self.est_buf[j] = est;
            lb = lb.max(est + self.heights[j] + 1);
        }
        lb
    }

    /// Branches over the options of `op`'s OR-trees at `cycle`, reserving
    /// through the same checker queries the production schedulers use.
    fn enter(&mut self, pos: usize, op: usize, cycle: i32, tree_pos: usize, makespan: i32) {
        self.nodes += 1;
        if self.nodes > self.node_limit {
            self.bailed = true;
            return;
        }
        let mdes = self.mdes;
        let class_trees = &mdes.class(self.classes[op]).or_trees;
        if tree_pos == class_trees.len() {
            self.cycles[op] = cycle;
            self.dfs(pos + 1, makespan);
            self.cycles[op] = UNPLACED;
            return;
        }
        let tree = &mdes.or_trees()[class_trees[tree_pos] as usize];
        for (k, &opt) in tree.options.iter().enumerate() {
            // Options with identical check footprints are interchangeable
            // for everything downstream, so exploring the first (highest
            // priority) one suffices — a symmetry break, not a heuristic.
            let checks = mdes.option_checks(opt as usize).as_slice();
            if tree.options[..k]
                .iter()
                .any(|&prev| mdes.option_checks(prev as usize).as_slice() == checks)
            {
                continue;
            }
            if self.checker.option_fits(&self.ru, opt, cycle, self.stats) {
                self.checker.apply_option_at(&mut self.ru, opt, cycle, true);
                self.sel[op].push(opt);
                self.enter(pos, op, cycle, tree_pos + 1, makespan);
                self.sel[op].pop();
                self.checker
                    .apply_option_at(&mut self.ru, opt, cycle, false);
            }
            if self.finished() {
                return;
            }
        }
    }
}

/// Brute-force minimum schedule length, for cross-checking the
/// branch-and-bound result in property tests.
///
/// Deliberately shares none of [`OracleScheduler`]'s machinery: no
/// heights, no lower bounds, no placement-order heuristic, no option
/// deduplication.  It enumerates every dependence-feasible cycle
/// assignment (in source index order, which is topological) and every
/// OR-tree option combination, bounded only by the incumbent length —
/// starting from the production list schedule, which witnesses that a
/// schedule of that length exists.
///
/// # Panics
///
/// Panics if the enumeration exceeds an internal node cap (the property
/// tests keep regions ≤ 8 operations, far below it).
pub fn exhaustive_min_length(mdes: &CompiledMdes, block: &Block, stats: &mut CheckStats) -> i32 {
    let n = block.ops.len();
    if n == 0 {
        return 0;
    }
    let mut seed_stats = CheckStats::new();
    let incumbent = ListScheduler::new(mdes)
        .schedule(block, &mut seed_stats)
        .length;
    let graph = DepGraph::build(block, mdes);
    let mut enumerator = Exhaustive {
        mdes,
        checker: Checker::new(mdes),
        block,
        preds: &graph.preds,
        ru: RuMap::new(),
        cycles: vec![UNPLACED; n],
        best: incumbent,
        nodes: 0,
        stats,
    };
    enumerator.place(0, 0);
    enumerator.best
}

struct Exhaustive<'a, 'b> {
    mdes: &'a CompiledMdes,
    checker: Checker<'a>,
    block: &'a Block,
    preds: &'a [Vec<mdes_sched::Edge>],
    ru: RuMap,
    cycles: Vec<i32>,
    best: i32,
    nodes: u64,
    stats: &'b mut CheckStats,
}

impl Exhaustive<'_, '_> {
    fn place(&mut self, index: usize, makespan: i32) {
        self.nodes += 1;
        assert!(
            self.nodes < 500_000_000,
            "exhaustive enumeration exceeded its node cap"
        );
        if index == self.block.ops.len() {
            self.best = self.best.min(makespan);
            return;
        }
        let mut est = 0;
        for edge in &self.preds[index] {
            est = est.max(self.cycles[edge.from] + edge.latency);
        }
        // Any schedule strictly shorter than the current best issues
        // every operation at cycle ≤ best − 2.
        for cycle in est..=self.best - 2 {
            self.options(index, cycle, 0, makespan.max(cycle + 1));
        }
    }

    fn options(&mut self, index: usize, cycle: i32, tree_pos: usize, makespan: i32) {
        let mdes = self.mdes;
        let class_trees = &mdes.class(self.block.ops[index].class).or_trees;
        if tree_pos == class_trees.len() {
            self.cycles[index] = cycle;
            self.place(index + 1, makespan);
            self.cycles[index] = UNPLACED;
            return;
        }
        let tree = &mdes.or_trees()[class_trees[tree_pos] as usize];
        for &opt in &tree.options {
            if self.checker.option_fits(&self.ru, opt, cycle, self.stats) {
                self.checker.apply_option_at(&mut self.ru, opt, cycle, true);
                self.options(index, cycle, tree_pos + 1, makespan);
                self.checker
                    .apply_option_at(&mut self.ru, opt, cycle, false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::UsageEncoding;
    use mdes_sched::{Op, Reg};

    fn compile(src: &str) -> CompiledMdes {
        let spec = mdes_lang::compile(src).unwrap();
        CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap()
    }

    /// Two decoders feeding one memory unit and two ALUs — the same toy
    /// machine the list scheduler's tests use.
    fn two_issue() -> CompiledMdes {
        compile(
            "
            resource Dec[2]; resource M; resource ALU[2];
            or_tree AnyDec = first_of(for d in 0..2: { Dec[d] @ 0 });
            or_tree Mem = first_of({ M @ 0 });
            or_tree AnyAlu = first_of(for a in 0..2: { ALU[a] @ 0 });
            and_or_tree LoadPath = all_of(AnyDec, Mem);
            and_or_tree AluPath = all_of(AnyDec, AnyAlu);
            class load { constraint = LoadPath; latency = 2; flags = load; }
            class alu { constraint = AluPath; latency = 1; }
        ",
        )
    }

    #[test]
    fn empty_block_schedules_trivially() {
        let mdes = two_issue();
        let mut stats = CheckStats::new();
        let outcome = OracleScheduler::new(&mdes)
            .schedule(&Block::new(), &mut stats)
            .unwrap();
        assert_eq!(outcome.schedule.length, 0);
        assert!(outcome.proved);
    }

    #[test]
    fn oversized_block_is_refused() {
        let mdes = two_issue();
        let alu = mdes.class_by_name("alu").unwrap();
        let block: Block = (0..5).map(|i| Op::new(alu, vec![Reg(i)], vec![])).collect();
        let mut stats = CheckStats::new();
        assert!(OracleScheduler::new(&mdes)
            .with_max_ops(4)
            .schedule(&block, &mut stats)
            .is_none());
    }

    #[test]
    fn independent_ops_prove_at_root() {
        let mdes = two_issue();
        let alu = mdes.class_by_name("alu").unwrap();
        let block: Block = (0..4).map(|i| Op::new(alu, vec![Reg(i)], vec![])).collect();
        let mut stats = CheckStats::new();
        let outcome = OracleScheduler::new(&mdes)
            .schedule(&block, &mut stats)
            .unwrap();
        assert_eq!(outcome.schedule.length, 2); // 4 ops, 2-wide decode
        assert_eq!(outcome.nodes, 0); // resource bound == incumbent
        assert!(outcome.proved);
        assert!(!outcome.improved);
    }

    /// A machine where greedy option choice is suboptimal: the shared
    /// unit S is the first (highest-priority) option of class `a`, but
    /// class `b` can *only* use S.  Greedy scheduling of `a` first takes
    /// S and pushes `b` to the next cycle; the oracle must discover the
    /// a→A, b→S assignment and fit both in one cycle.
    fn greedy_trap() -> CompiledMdes {
        compile(
            "
            resource S; resource A;
            or_tree Flexible = first_of({ S @ 0 }, { A @ 0 });
            or_tree Shared = first_of({ S @ 0 });
            class a { constraint = Flexible; latency = 1; }
            class b { constraint = Shared; latency = 1; }
        ",
        )
    }

    #[test]
    fn oracle_beats_greedy_option_choice() {
        let mdes = greedy_trap();
        let a = mdes.class_by_name("a").unwrap();
        let b = mdes.class_by_name("b").unwrap();
        let mut block = Block::new();
        block.push(Op::new(a, vec![Reg(1)], vec![]));
        block.push(Op::new(b, vec![Reg(2)], vec![]));

        let mut list_stats = CheckStats::new();
        let list = ListScheduler::new(&mdes).schedule(&block, &mut list_stats);
        assert_eq!(list.length, 2, "greedy must fall into the trap");

        let mut stats = CheckStats::new();
        let outcome = OracleScheduler::new(&mdes)
            .schedule(&block, &mut stats)
            .unwrap();
        assert_eq!(outcome.schedule.length, 1);
        assert!(outcome.proved);
        assert!(outcome.improved);
        let graph = DepGraph::build(&block, &mdes);
        outcome.schedule.verify(&graph, &mdes).unwrap();
    }

    #[test]
    fn oracle_matches_exhaustive_on_the_trap() {
        let mdes = greedy_trap();
        let a = mdes.class_by_name("a").unwrap();
        let b = mdes.class_by_name("b").unwrap();
        let mut block = Block::new();
        block.push(Op::new(a, vec![Reg(1)], vec![]));
        block.push(Op::new(b, vec![Reg(2)], vec![]));
        let mut stats = CheckStats::new();
        let brute = exhaustive_min_length(&mdes, &block, &mut stats);
        assert_eq!(brute, 1);
    }

    #[test]
    fn search_is_deterministic() {
        let mdes = two_issue();
        let load = mdes.class_by_name("load").unwrap();
        let alu = mdes.class_by_name("alu").unwrap();
        let mut block = Block::new();
        block.push(Op::new(load, vec![Reg(1)], vec![]));
        block.push(Op::new(alu, vec![Reg(2)], vec![Reg(1)]));
        block.push(Op::new(load, vec![Reg(3)], vec![]));
        block.push(Op::new(alu, vec![Reg(4)], vec![Reg(3)]));
        block.push(Op::new(alu, vec![Reg(5)], vec![Reg(2), Reg(4)]));

        let mut s1 = CheckStats::new();
        let mut s2 = CheckStats::new();
        let a = OracleScheduler::new(&mdes)
            .schedule(&block, &mut s1)
            .unwrap();
        let b = OracleScheduler::new(&mdes)
            .schedule(&block, &mut s2)
            .unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(s1.resource_checks, s2.resource_checks);
    }

    #[test]
    fn dependences_are_respected() {
        let mdes = two_issue();
        let load = mdes.class_by_name("load").unwrap();
        let alu = mdes.class_by_name("alu").unwrap();
        let mut block = Block::new();
        block.push(Op::new(load, vec![Reg(1)], vec![]));
        block.push(Op::new(alu, vec![Reg(2)], vec![Reg(1)]));
        let mut stats = CheckStats::new();
        let outcome = OracleScheduler::new(&mdes)
            .schedule(&block, &mut stats)
            .unwrap();
        // load latency 2 → consumer at cycle 2, length 3.
        assert_eq!(outcome.schedule.length, 3);
        let graph = DepGraph::build(&block, &mdes);
        outcome.schedule.verify(&graph, &mdes).unwrap();
    }
}
