//! The analyzer against every bundled machine description.
//!
//! The lint gate in `ci.sh` depends on these invariants: the six bundled
//! machines carry **zero fatal** diagnostics (they all schedule real
//! workloads, so a fatal here would be an analyzer bug), and repeated
//! analysis is byte-deterministic.

use mdes_analyze::{analyze_spec, render_text, Severity};
use mdes_core::spec::MdesSpec;
use mdes_machines::Machine;

fn bundled() -> Vec<(String, MdesSpec)> {
    let mut machines: Vec<(String, MdesSpec)> = Machine::all()
        .into_iter()
        .map(|machine| (machine.name().to_lowercase(), machine.spec()))
        .collect();
    machines.push(("pentiumpro".to_string(), mdes_machines::pentium_pro()));
    machines.push((
        "superspark_approx".to_string(),
        mdes_machines::approximate_superspark(),
    ));
    machines
}

#[test]
fn bundled_machines_have_no_fatal_diagnostics() {
    for (name, spec) in bundled() {
        let analysis = analyze_spec(&spec);
        assert!(!analysis.has_fatal(), "{name}: {:?}", analysis.diagnostics);
        assert!(analysis.items_analyzed > 0, "{name}");
    }
}

#[test]
fn bundled_machine_reports_are_deterministic() {
    for (name, spec) in bundled() {
        let first = render_text(&name, &analyze_spec(&spec));
        let second = render_text(&name, &analyze_spec(&spec));
        assert_eq!(first, second, "{name}");
    }
}

#[test]
fn optimized_bundled_machines_lose_maintenance_diagnostics() {
    // The opt pipeline applies the paper's transformations; afterwards the
    // analyzer must not see *more* problems than before, and the
    // dominated-option lints it proved must be gone (the pipeline's
    // syntactic pass removes MD002 sites; MD003 sites it cannot see may
    // remain).
    for (name, spec) in bundled() {
        let before = analyze_spec(&spec);
        let mut optimized = spec.clone();
        mdes_opt::pipeline::optimize(
            &mut optimized,
            &mdes_opt::pipeline::PipelineConfig::default(),
        );
        let after = analyze_spec(&optimized);
        assert!(!after.has_fatal(), "{name}: {:?}", after.diagnostics);
        let md002 =
            |a: &mdes_analyze::Analysis| a.diagnostics.iter().filter(|d| d.code == "MD002").count();
        assert_eq!(
            md002(&after),
            0,
            "{name}: syntactic dominance survived the pipeline"
        );
        assert!(
            after.count(Severity::Warn) <= before.count(Severity::Warn),
            "{name}: pipeline introduced warnings ({:?})",
            after.diagnostics
        );
    }
}
