//! Analyzer recall against ground truth: every defect
//! [`mdes_workload::fleet_with_defects`] plants must be reported with
//! its stable code, attached to the planted item, byte-identically
//! across runs.

use mdes_analyze::{analyze_spec, render_text, Severity};
use mdes_workload::fleet_with_defects;

#[test]
fn every_planted_defect_is_reported_with_its_code() {
    let mut total = 0usize;
    for seeded in fleet_with_defects(42, 16, 1.0) {
        let analysis = analyze_spec(&seeded.machine.spec);
        for defect in &seeded.defects {
            total += 1;
            assert!(
                analysis
                    .diagnostics
                    .iter()
                    .any(|d| d.code == defect.code && d.item.as_deref() == Some(&defect.item)),
                "{}: planted {} on `{}` not reported; got {:?}",
                seeded.machine.name,
                defect.code,
                defect.item,
                analysis.diagnostics
            );
        }
        // The unsatisfiable plant is fatal; the machine must gate.
        assert!(analysis.has_fatal(), "{}", seeded.machine.name);
    }
    assert_eq!(total, 32, "16 machines x 2 planted defects");
}

#[test]
fn untouched_fleet_machines_stay_fatal_free() {
    for seeded in fleet_with_defects(42, 32, 0.0) {
        let analysis = analyze_spec(&seeded.machine.spec);
        assert!(seeded.defects.is_empty());
        assert_eq!(
            analysis.count(Severity::Fatal),
            0,
            "{}: {:?}",
            seeded.machine.name,
            analysis.diagnostics
        );
    }
}

#[test]
fn recall_reports_are_byte_identical_across_runs() {
    let render = |seed: u64| -> String {
        fleet_with_defects(seed, 16, 1.0)
            .iter()
            .map(|s| render_text(&s.machine.name, &analyze_spec(&s.machine.spec)))
            .collect()
    };
    assert_eq!(render(42), render(42));
    assert_ne!(render(42), render(43), "seed must matter");
}
