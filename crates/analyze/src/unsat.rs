//! Unsatisfiable opcode classes: operations that can never schedule.
//!
//! The checkers ([`mdes_core::compile::Checker`]) reserve a class's
//! OR-trees progressively: each tree's chosen option is written into the
//! RU map before the next tree is probed, so two branches of an AND
//! that demand the same `(resource, time)` cell conflict *with each
//! other* even into an empty map.  If **every** combination of options
//! (one per OR-tree) has such an internal collision, no issue time and
//! no map state can ever admit the class — the operation is dead on
//! arrival and every schedule containing it must stall forever.
//!
//! The proof is an exhaustive search over option combinations with
//! cell-overlap pruning.  It is budgeted: a class whose combination
//! space cannot be exhausted within [`COMBO_BUDGET`] /
//! [`VISIT_BUDGET`] gets *no* diagnostic (conservative — MD001 is only
//! emitted on a complete proof, since it is fatal and gates guard and
//! serve reloads).

use std::collections::BTreeSet;

use mdes_core::spec::{Constraint, MdesSpec};
use mdes_core::usage::ResourceUsage;

use crate::{Diagnostic, Severity, Target};

/// Maximum number of complete option combinations to enumerate per
/// class before giving up on a proof.
const COMBO_BUDGET: usize = 4096;
/// Maximum number of DFS node visits per class (prefix states), bounding
/// work even when pruning keeps the combination count low.
const VISIT_BUDGET: usize = 65536;

/// Emits an MD001 fatal diagnostic for every class proved unable to
/// schedule under any circumstances.
pub(crate) fn unsatisfiable_classes(spec: &MdesSpec, diags: &mut Vec<Diagnostic>) {
    for class_id in spec.class_ids() {
        let class = spec.class(class_id);
        let trees: Vec<usize> = match class.constraint {
            Constraint::Or(tree) => vec![tree.index()],
            Constraint::AndOr(and_tree) => spec
                .and_or_tree(and_tree)
                .or_trees
                .iter()
                .map(|t| t.index())
                .collect(),
        };
        // Canonical usage cells per option, fetched lazily per tree.
        let option_cells: Vec<Vec<Vec<ResourceUsage>>> = trees
            .iter()
            .map(|&t| {
                spec.or_tree(mdes_core::spec::OrTreeId::from_index(t))
                    .options
                    .iter()
                    .map(|&o| spec.option(o).canonical_usages())
                    .collect()
            })
            .collect();

        let mut search = Search {
            combos: 0,
            visits: 0,
            exhausted: false,
        };
        let mut used: BTreeSet<(usize, i32)> = BTreeSet::new();
        let satisfiable = search.dfs(&option_cells, 0, &mut used);
        if !satisfiable && !search.exhausted {
            let reason = if option_cells.iter().any(|t| t.is_empty()) {
                "an AND branch offers no options".to_string()
            } else {
                format!(
                    "every combination of its {} OR-tree option choices collides on a shared \
                     (resource, cycle) cell ({} combinations refuted)",
                    trees.len(),
                    search.combos
                )
            };
            diags.push(
                Diagnostic::new(
                    "MD001",
                    Severity::Fatal,
                    format!("class {} can never be scheduled: {reason}", class.name),
                )
                .with_item(class.name.clone())
                .with_target(Target::Class(class_id.index())),
            );
        }
    }
}

struct Search {
    combos: usize,
    visits: usize,
    exhausted: bool,
}

impl Search {
    /// Returns true as soon as one internally-consistent combination is
    /// found.  Returns false when the space is refuted — but the result
    /// is only a *proof* when `exhausted` stayed false.
    fn dfs(
        &mut self,
        trees: &[Vec<Vec<ResourceUsage>>],
        depth: usize,
        used: &mut BTreeSet<(usize, i32)>,
    ) -> bool {
        self.visits += 1;
        if self.visits > VISIT_BUDGET {
            self.exhausted = true;
            return true; // abandon: pretend satisfiable so no diagnostic fires
        }
        if depth == trees.len() {
            self.combos += 1;
            if self.combos > COMBO_BUDGET {
                self.exhausted = true;
            }
            return true; // a full combination with no collisions
        }
        'options: for cells in &trees[depth] {
            let mut added: Vec<(usize, i32)> = Vec::with_capacity(cells.len());
            for u in cells {
                let cell = (u.resource.index(), u.time);
                if !used.insert(cell) {
                    // collision with an earlier branch (or this option's
                    // own duplicate after canonicalization — impossible,
                    // canonical usages are deduplicated)
                    for cell in added.drain(..) {
                        used.remove(&cell);
                    }
                    self.combos += 1;
                    if self.combos > COMBO_BUDGET {
                        self.exhausted = true;
                        return true;
                    }
                    continue 'options;
                }
                added.push(cell);
            }
            let ok = self.dfs(trees, depth + 1, used);
            for cell in added {
                used.remove(&cell);
            }
            if ok {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::spec::{AndOrTree, Constraint, Latency, OpFlags, OrTree, TableOption};
    use mdes_core::ResourceId;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    /// Two AND branches that both need ALU@0: provably unschedulable.
    #[test]
    fn colliding_and_branches_are_fatal() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("ALU").unwrap();
        let a = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let b = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let ta = spec.add_or_tree(OrTree::named("A", vec![a]));
        let tb = spec.add_or_tree(OrTree::named("B", vec![b]));
        let and = spec.add_and_or_tree(AndOrTree::named("Both", vec![ta, tb]));
        spec.add_class(
            "stuck",
            Constraint::AndOr(and),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        spec.validate().unwrap();

        let mut diags = Vec::new();
        unsatisfiable_classes(&spec, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "MD001");
        assert_eq!(diags[0].severity, Severity::Fatal);
        assert_eq!(diags[0].target, Target::Class(0));
    }

    /// One escape hatch (a second option on a different cycle) makes the
    /// class satisfiable — no diagnostic.
    #[test]
    fn a_single_escape_option_clears_the_class() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("ALU").unwrap();
        let a = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let b0 = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let b1 = spec.add_option(TableOption::new(vec![u(0, 1)]));
        let ta = spec.add_or_tree(OrTree::named("A", vec![a]));
        let tb = spec.add_or_tree(OrTree::named("B", vec![b0, b1]));
        let and = spec.add_and_or_tree(AndOrTree::named("Both", vec![ta, tb]));
        spec.add_class(
            "ok",
            Constraint::AndOr(and),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        let mut diags = Vec::new();
        unsatisfiable_classes(&spec, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    /// The budget guard: a wide satisfiable class finishes (first combo
    /// wins immediately), and even a wide *unsatisfiable* space within
    /// budget is still proved.
    #[test]
    fn wide_unsat_space_is_still_proved_within_budget() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("X").unwrap();
        // 3 AND branches, each with 4 options, all pinned to X@0:
        // 4^3 = 64 combinations, all refuted at depth 1 by pruning.
        let opts: Vec<_> = (0..4)
            .map(|_| spec.add_option(TableOption::new(vec![u(0, 0)])))
            .collect();
        let trees: Vec<_> = (0..3)
            .map(|i| spec.add_or_tree(OrTree::named(format!("T{i}"), opts.clone())))
            .collect();
        let and = spec.add_and_or_tree(AndOrTree::named("Wide", trees));
        spec.add_class(
            "wide",
            Constraint::AndOr(and),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        let mut diags = Vec::new();
        unsatisfiable_classes(&spec, &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "MD001");
    }

    /// Plain OR classes are trivially satisfiable whenever any option
    /// exists.
    #[test]
    fn plain_or_classes_never_trip_md001() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("R").unwrap();
        let o = spec.add_option(TableOption::new(vec![u(0, 0), u(0, 0)]));
        let t = spec.add_or_tree(OrTree::new(vec![o]));
        spec.add_class("op", Constraint::Or(t), Latency::new(1), OpFlags::none())
            .unwrap();
        let mut diags = Vec::new();
        unsatisfiable_classes(&spec, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
