//! Static triage of serialized LMDES images.
//!
//! [`mdes_core::lmdes::read`] rejects every malformed image, but it
//! collapses *why* into four error variants — and a serving daemon's
//! operators (and `guard`'s rollback tests) want the corruption *class*:
//! a wrong file, an interrupted write, a tampered length field and a
//! concatenation accident all demand different responses.  This walker
//! re-traverses the byte layout documented in [`mdes_core::lmdes`] and
//! classifies the first defect into a stable `MD10x` code:
//!
//! | code  | defect                                           | typical cause (`ImageFault`) |
//! |-------|--------------------------------------------------|------------------------------|
//! | MD101 | magic/version prefix wrong                       | `smash-magic`                |
//! | MD102 | image shorter than the fixed 19-byte header      | `truncate-header`            |
//! | MD103 | structure runs past the end of the image         | `truncate-body`              |
//! | MD104 | absurd element count (> 2^24) in a length field  | `huge-count`                 |
//! | MD105 | bytes remain after a complete structure          | `garbage-tail`               |
//! | MD106 | field value outside its domain / dangling index  | bit rot, tampering           |
//!
//! The classification is deterministic: equal bytes produce equal
//! diagnostics.  A clean walk is additionally cross-checked against the
//! real decoder, so this triage can never *accept* an image the loader
//! would reject.

use mdes_core::lmdes;

use crate::{Analysis, Diagnostic, Severity};

/// Fixed bytes before the first section: magic (6) + encoding (1) +
/// resource count (4) + min/max check time (8).
const HEADER_LEN: usize = 19;

/// Element counts above this are treated as tampered length fields
/// (MD104) rather than truncation: no realistic description holds
/// sixteen million items, but a bit-flipped or spliced count easily
/// does.
const HUGE_COUNT: u64 = 1 << 24;

/// Statically triages a serialized LMDES image.
///
/// Returns at most one diagnostic — the first defect encountered in
/// layout order — because everything after a structural fault is
/// unreliable.  All image diagnostics are fatal: there is no such thing
/// as a slightly corrupt binary image.
pub fn analyze_image(bytes: &[u8]) -> Analysis {
    let mut walker = Walker {
        bytes,
        pos: 0,
        items: 0,
    };
    let mut diagnostics = Vec::new();
    if let Err(diag) = walker.walk() {
        diagnostics.push(diag);
    } else if let Err(err) = lmdes::read(bytes) {
        // The walk is a faithful re-traversal, so this arm should be
        // unreachable; keep it so triage can never accept an image the
        // loader rejects.
        diagnostics.push(fatal(
            "MD106",
            format!("image rejected by the LMDES decoder: {err}"),
        ));
    }
    Analysis {
        diagnostics,
        items_analyzed: walker.items,
    }
}

fn fatal(code: &'static str, message: String) -> Diagnostic {
    Diagnostic::new(code, Severity::Fatal, message)
}

struct Walker<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Structural items (options, trees, classes, bypasses) successfully
    /// traversed before any defect.
    items: usize,
}

impl Walker<'_> {
    fn walk(&mut self) -> Result<(), Diagnostic> {
        self.magic()?;
        let encoding = self.u8("encoding")?;
        if encoding > 1 {
            return Err(fatal(
                "MD106",
                format!(
                    "encoding byte {encoding} is outside its domain (0 = scalar, 1 = bit-vector)"
                ),
            ));
        }
        let num_resources = self.u32("num_resources")?;
        if num_resources as usize > mdes_core::resource::MAX_RESOURCES {
            return Err(fatal(
                "MD106",
                format!(
                    "resource count {num_resources} exceeds the pool limit {}",
                    mdes_core::resource::MAX_RESOURCES
                ),
            ));
        }
        self.i32("min_check_time")?;
        self.i32("max_check_time")?;

        let num_options = self.count("option count", 4)?;
        for _ in 0..num_options {
            let checks = self.count("check count", 12)?;
            self.skip(checks * 12, "reservation checks")?;
            self.items += 1;
        }

        let num_trees = self.count("or-tree count", 4)?;
        for _ in 0..num_trees {
            let count = self.count("or-tree option count", 4)?;
            for _ in 0..count {
                let idx = self.u32("option index")?;
                if idx as usize >= num_options {
                    return Err(fatal(
                        "MD106",
                        format!("or-tree references option #{idx} of a {num_options}-option pool"),
                    ));
                }
            }
            self.items += 1;
        }

        let num_classes = self.count("class count", 26)?;
        for _ in 0..num_classes {
            let name_len = self.count("class name length", 1)?;
            let name = self.take(name_len, "class name")?;
            if std::str::from_utf8(name).is_err() {
                return Err(fatal("MD106", "class name is not UTF-8".to_string()));
            }
            let kind = self.u8("constraint kind")?;
            if kind > 1 {
                return Err(fatal(
                    "MD106",
                    format!("constraint kind {kind} is outside its domain (0 = OR, 1 = AND/OR)"),
                ));
            }
            self.u32("and_or_index")?;
            self.i32("dest latency")?;
            self.i32("src latency")?;
            self.i32("mem latency")?;
            let flags = self.u8("flags")?;
            if flags & !0b1111 != 0 {
                return Err(fatal(
                    "MD106",
                    format!("flags byte {flags:#04x} sets bits outside its domain"),
                ));
            }
            let count = self.count("class tree count", 4)?;
            for _ in 0..count {
                let idx = self.u32("tree index")?;
                if idx as usize >= num_trees {
                    return Err(fatal(
                        "MD106",
                        format!("class references or-tree #{idx} of a {num_trees}-tree pool"),
                    ));
                }
            }
            if kind == 0 && count != 1 {
                return Err(fatal(
                    "MD106",
                    format!("OR-constraint class lists {count} trees (must be exactly 1)"),
                ));
            }
            self.items += 1;
        }

        let num_bypasses = self.count("bypass count", 12)?;
        for _ in 0..num_bypasses {
            for field in ["bypass producer", "bypass consumer"] {
                let idx = self.u32(field)?;
                if idx as usize >= num_classes {
                    return Err(fatal(
                        "MD106",
                        format!("{field} references class #{idx} of a {num_classes}-class pool"),
                    ));
                }
            }
            self.i32("bypass latency")?;
            self.items += 1;
        }

        if self.pos != self.bytes.len() {
            return Err(fatal(
                "MD105",
                format!(
                    "{} byte(s) of trailing garbage after a complete {}-byte structure",
                    self.bytes.len() - self.pos,
                    self.pos
                ),
            ));
        }
        Ok(())
    }

    /// Distinguishes a wrong file (MD101) from an interrupted write
    /// (MD102): a short image whose bytes still agree with the magic
    /// prefix was cut mid-header, while any disagreeing byte means this
    /// was never (this version of) an LMDES image.
    fn magic(&mut self) -> Result<(), Diagnostic> {
        let magic = lmdes::MAGIC;
        let have = self.bytes.len().min(magic.len());
        if self.bytes[..have] != magic[..have] {
            return Err(fatal(
                "MD101",
                "magic/version prefix does not match LMDES format 2 (wrong file or format version)"
                    .to_string(),
            ));
        }
        if self.bytes.len() < HEADER_LEN {
            return Err(fatal(
                "MD102",
                format!(
                    "image is {} byte(s) but the fixed LMDES header is {HEADER_LEN} (interrupted write)",
                    self.bytes.len()
                ),
            ));
        }
        self.pos = magic.len();
        Ok(())
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], Diagnostic> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(fatal(
                "MD103",
                format!(
                    "image ends inside {what}: need {n} byte(s) at offset {}, have {}",
                    self.pos,
                    self.bytes.len() - self.pos
                ),
            )),
        }
    }

    fn skip(&mut self, n: usize, what: &str) -> Result<(), Diagnostic> {
        self.take(n, what).map(|_| ())
    }

    fn u8(&mut self, what: &str) -> Result<u8, Diagnostic> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, Diagnostic> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }

    fn i32(&mut self, what: &str) -> Result<i32, Diagnostic> {
        let bytes = self.take(4, what)?;
        Ok(i32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }

    /// An element count: absurd values are classified as tampering
    /// (MD104) *before* the remaining-bytes check, so `u32::MAX` reads
    /// as a spliced length rather than mere truncation.
    fn count(&mut self, what: &str, min_element_bytes: usize) -> Result<usize, Diagnostic> {
        let offset = self.pos;
        let value = self.u32(what)? as u64;
        if value > HUGE_COUNT {
            return Err(fatal(
                "MD104",
                format!(
                    "{what} at offset {offset} claims {value} element(s) — a tampered or \
                     bit-rotted length field"
                ),
            ));
        }
        let need = value as usize * min_element_bytes.max(1);
        if need > self.bytes.len() - self.pos {
            return Err(fatal(
                "MD103",
                format!(
                    "{what} at offset {offset} claims {value} element(s) needing ≥{need} byte(s), \
                     but only {} remain (truncated image)",
                    self.bytes.len() - self.pos
                ),
            ));
        }
        Ok(value as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::compile::{CompiledMdes, UsageEncoding};
    use mdes_core::spec::{Constraint, Latency, MdesSpec, OpFlags, OrTree, TableOption};
    use mdes_core::usage::ResourceUsage;

    fn sample_image() -> Vec<u8> {
        let mut spec = MdesSpec::new();
        let m = spec.resources_mut().add("M").unwrap();
        let n = spec.resources_mut().add("N").unwrap();
        let o1 = spec.add_option(TableOption::new(vec![
            ResourceUsage::new(m, 0),
            ResourceUsage::new(n, 1),
        ]));
        let o2 = spec.add_option(TableOption::new(vec![ResourceUsage::new(n, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![o1, o2]));
        let a = spec
            .add_class(
                "alu",
                Constraint::Or(tree),
                Latency::new(2),
                OpFlags::none(),
            )
            .unwrap();
        let b = spec
            .add_class(
                "mem",
                Constraint::Or(tree),
                Latency::new(3),
                OpFlags::load(),
            )
            .unwrap();
        spec.add_bypass(a, b, 1).unwrap();
        let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        lmdes::write(&mdes)
    }

    #[test]
    fn clean_image_has_no_diagnostics() {
        let analysis = analyze_image(&sample_image());
        assert!(
            analysis.diagnostics.is_empty(),
            "{:?}",
            analysis.diagnostics
        );
        assert!(analysis.items_analyzed >= 6); // 2 options + 1 tree + 2 classes + 1 bypass
    }

    #[test]
    fn triage_never_accepts_what_the_decoder_rejects() {
        // Splice a large value over every byte offset; wherever the
        // decoder errors, triage must report a fatal diagnostic too.
        let bytes = sample_image();
        for pos in 0..bytes.len().saturating_sub(4) {
            let mut corrupt = bytes.clone();
            corrupt[pos..pos + 4].copy_from_slice(&0xFFFF_FF00u32.to_le_bytes());
            let decoder = lmdes::read(&corrupt);
            let triage = analyze_image(&corrupt);
            if decoder.is_err() {
                assert!(
                    triage.has_fatal(),
                    "offset {pos}: decoder rejected ({decoder:?}) but triage passed"
                );
            } else {
                assert!(
                    !triage.has_fatal(),
                    "offset {pos}: decoder accepted but triage reported {:?}",
                    triage.diagnostics
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_classified() {
        let bytes = sample_image();
        for len in 0..bytes.len() {
            let analysis = analyze_image(&bytes[..len]);
            assert_eq!(analysis.diagnostics.len(), 1, "prefix {len}");
            let code = analysis.diagnostics[0].code;
            if len < HEADER_LEN {
                assert_eq!(code, "MD102", "prefix {len}");
            } else {
                assert_eq!(code, "MD103", "prefix {len}");
            }
        }
    }

    #[test]
    fn classification_is_deterministic() {
        let bytes = sample_image();
        let mut corrupt = bytes.clone();
        corrupt[3] ^= 0x5A;
        let a = format!("{:?}", analyze_image(&corrupt).diagnostics);
        let b = format!("{:?}", analyze_image(&corrupt).diagnostics);
        assert_eq!(a, b);
    }
}
