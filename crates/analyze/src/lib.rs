//! Static diagnostics for machine descriptions.
//!
//! The paper's transformations (Sections 5–8) are consequences of
//! statically provable properties of an MDES: a dominated option can
//! never be selected, a dead item can never be reached, shifted usage
//! times change no collision vector.  This crate runs that analysis as a
//! *front line* — before a description is compiled, served, or fuzzed —
//! and reports what it proves as structured [`Diagnostic`]s with stable
//! `MDnnn` codes and fatal/warn/info severities.  No scheduler ever runs.
//!
//! Two entry points:
//!
//! * [`analyze_spec`] — the mid-level analysis over an [`MdesSpec`]:
//!   semantic dominance (collision-vector difference sets, strictly more
//!   powerful than the syntactic superset check of `mdes-opt`),
//!   unsatisfiable AND-trees, unreferenced/dead items, latency-window
//!   overflow, and missed-transformation lints;
//! * [`analyze_image`] — the format-level analysis over raw LMDES image
//!   bytes, classifying each corruption family into its own code so the
//!   guard's image-fault classes map 1:1 onto diagnostics.
//!
//! The dominance analysis carries a soundness contract the dynamic side
//! referees: an option reported dead by [`Analysis::dead_options`] is
//! never selected by any checker on any probe stream (see
//! `tests/analyze_soundness.rs` and `docs/analysis.md`).
//!
//! ```
//! use mdes_analyze::{analyze_spec, Severity};
//!
//! let spec = mdes_lang::compile("
//!     resource Dec[2];
//!     or_tree AnyDec = first_of(
//!         { Dec[0] @ 0 },
//!         { Dec[0] @ 0, Dec[1] @ 0 });   // superset: can never win
//!     class alu { constraint = AnyDec; }
//!     op ADD = alu;
//! ").unwrap();
//! let analysis = analyze_spec(&spec);
//! assert!(analysis.diagnostics.iter().any(|d| d.code == "MD002"));
//! assert_eq!(analysis.count(Severity::Fatal), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dominance;
mod image;
mod unsat;

use std::fmt;
use std::fmt::Write as _;

use mdes_core::spec::{Constraint, MdesSpec};
use mdes_opt::sortzero::unsorted_options;
use mdes_opt::timeshift::{shift_constants, Direction};
use mdes_telemetry::Telemetry;

pub use image::analyze_image;

/// Largest |check time| the serving layer accepts (cycles relative to
/// issue).  The RU map's window is conceptually infinite — reads outside
/// it answer "free", releases are no-ops — so a usage time beyond this
/// bound is never *wrong*, but it silently stops constraining anything
/// once it leaves the physical window and it makes every reservation
/// walk pathological.  `mdes_guard::vet_image` enforces the same bound
/// dynamically; [`analyze_spec`] proves it before an image exists.
pub const MAX_CHECK_TIME: i32 = 4096;

/// Largest |latency| the serving layer accepts, same rationale as
/// [`MAX_CHECK_TIME`].
pub const MAX_LATENCY: i32 = 4096;

/// How bad a diagnostic is.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The description (or image) must not be compiled, served, or
    /// optimized: an operation can never issue, or the serving layer's
    /// policy bounds are provably violated.
    Fatal,
    /// Provably dead or redundant information: safe to serve, but the
    /// description has rotted and should be cleaned.
    Warn,
    /// A missed-transformation opportunity with an estimated saving.
    Info,
}

impl Severity {
    /// Lowercase display name (`fatal`, `warn`, `info`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Fatal => "fatal",
            Severity::Warn => "warn",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a diagnostic points at, as pool indices into the analyzed spec.
/// Drives the dynamic soundness harness and the defect-recall tests;
/// rendering uses names instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Target {
    /// Nothing structured (summary diagnostics).
    None,
    /// A class, by index.
    Class(usize),
    /// One option within one OR-tree (both by index): the unit the
    /// dominance proof speaks about.
    OrTreeOption {
        /// OR-tree index.
        tree: usize,
        /// Option index (pool index, identical to the compiled option
        /// index).
        option: usize,
    },
    /// A resource, by index.
    Resource(usize),
    /// An OR-tree, by index.
    OrTree(usize),
}

/// One analyzer finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, `MD001`–`MD106`; see `docs/analysis.md` for the
    /// registry.  Codes are append-only: a code never changes meaning.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable message.  Deterministic: equal specs produce equal
    /// messages.
    pub message: String,
    /// The declared name the diagnostic is about (class, OR-tree or
    /// resource name), when one exists — the anchor [`anchor_spans`]
    /// resolves against HMDL source.
    pub item: Option<String>,
    /// `(line, column)`, 1-based, in the HMDL source — filled by
    /// [`anchor_spans`] when the source is available.
    pub span: Option<(usize, usize)>,
    /// Structured reference for programmatic consumers.
    pub target: Target,
}

impl Diagnostic {
    fn new(code: &'static str, severity: Severity, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message,
            item: None,
            span: None,
            target: Target::None,
        }
    }

    fn with_item(mut self, item: impl Into<String>) -> Diagnostic {
        self.item = Some(item.into());
        self
    }

    fn with_target(mut self, target: Target) -> Diagnostic {
        self.target = target;
        self
    }
}

/// The diagnostic code registry: `(code, severity, summary)`.
/// `docs/analysis.md` renders this table; the doc test there keeps the
/// two in sync.
pub const CODE_REGISTRY: &[(&str, Severity, &str)] = &[
    (
        "MD001",
        Severity::Fatal,
        "unsatisfiable class: every option combination reuses a resource in the same cycle",
    ),
    (
        "MD002",
        Severity::Warn,
        "dominated option (syntactic): usages are a superset of a higher-priority option",
    ),
    (
        "MD003",
        Severity::Warn,
        "dominated option (semantic): difference-set proof that it can never be selected",
    ),
    (
        "MD004",
        Severity::Warn,
        "duplicate option: structurally identical to an earlier option",
    ),
    (
        "MD005",
        Severity::Warn,
        "unreferenced items: options/OR-trees/AND-OR-trees unreachable from any class",
    ),
    (
        "MD006",
        Severity::Warn,
        "unused resource: no option ever uses it",
    ),
    (
        "MD007",
        Severity::Info,
        "class without opcodes: unreachable from the compiler's vocabulary",
    ),
    (
        "MD008",
        Severity::Fatal,
        "latency-window overflow: a usage time or latency exceeds the serving policy bound",
    ),
    (
        "MD009",
        Severity::Info,
        "missed time shift: per-resource usage times carry removable constant offsets",
    ),
    (
        "MD010",
        Severity::Info,
        "missed check ordering: options do not probe cycle zero first",
    ),
    (
        "MD011",
        Severity::Info,
        "missed factoring: a usage common to every option of an OR-tree is duplicated",
    ),
    (
        "MD101",
        Severity::Fatal,
        "image: bad magic — not an LMDES image",
    ),
    ("MD102", Severity::Fatal, "image: truncated header"),
    (
        "MD103",
        Severity::Fatal,
        "image: truncated body — structure runs past the end of the image",
    ),
    ("MD104", Severity::Fatal, "image: implausible count field"),
    (
        "MD105",
        Severity::Fatal,
        "image: trailing garbage after a complete structure",
    ),
    (
        "MD106",
        Severity::Fatal,
        "image: malformed field (bad enum value or dangling index)",
    ),
];

/// The result of one analysis run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Analysis {
    /// Every finding, in deterministic order (analysis order, then pool
    /// index order).
    pub diagnostics: Vec<Diagnostic>,
    /// How many items (options, trees, classes, resources) the run
    /// walked — the bench harness's work unit.
    pub items_analyzed: usize,
}

impl Analysis {
    /// Diagnostics at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// True if any diagnostic is fatal — the gate the guard, the serve
    /// reload hook, and `mdesc lint`'s exit code all share.
    pub fn has_fatal(&self) -> bool {
        self.count(Severity::Fatal) > 0
    }

    /// The `(or_tree, option)` pairs proved dead by the dominance
    /// analysis: pairs the checkers must never select.
    ///
    /// An option id can appear at several positions of one tree; it is
    /// dead in that tree only if *every* position is dominated, which is
    /// what the per-position proofs in [`analyze_spec`] guarantee before
    /// a pair lands here.
    pub fn dead_options(&self) -> Vec<(usize, usize)> {
        self.diagnostics
            .iter()
            .filter(|d| d.code == "MD002" || d.code == "MD003")
            .filter_map(|d| match d.target {
                Target::OrTreeOption { tree, option } => Some((tree, option)),
                _ => None,
            })
            .collect()
    }

    /// First fatal diagnostic, for one-line error details.
    pub fn first_fatal(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Fatal)
    }
}

/// Runs the full static analysis over a mid-level description.
///
/// Read-only and deterministic: equal specs produce equal [`Analysis`]
/// values, byte for byte.  Never panics on a validated spec.
pub fn analyze_spec(spec: &MdesSpec) -> Analysis {
    analyze_spec_with_telemetry(spec, &Telemetry::disabled())
}

/// [`analyze_spec`] recording `analyze/*` counters, gauges and the
/// analysis-time span into `tel` (see `docs/telemetry.md`).
pub fn analyze_spec_with_telemetry(spec: &MdesSpec, tel: &Telemetry) -> Analysis {
    let _span = tel.span("analyze");
    let mut diags = Vec::new();

    // (2) Unsatisfiable classes — fatal: the operation can never issue.
    unsat::unsatisfiable_classes(spec, &mut diags);

    // (4) Latency-window overflow — fatal: the serving policy bound is
    // provably violated before any image exists.
    window_overflow(spec, &mut diags);

    // (1) Dominance: syntactic supersets and the semantic
    // difference-set proof.
    let dominated = dominance::dominance_diagnostics(spec, &mut diags);

    // Duplicate options (the Section 5 copy-paste smell).
    duplicate_options(spec, &mut diags);

    // (3) Unreferenced / dead items, cross-checked against the opt
    // pipeline's own sweep.
    dead_items(spec, &mut diags);

    // (5) Missed-transformation lints.
    missed_time_shift(spec, &mut diags);
    missed_check_ordering(spec, &mut diags);
    missed_factoring(spec, &mut diags);

    let items_analyzed = spec.num_options()
        + spec.num_or_trees()
        + spec.num_and_or_trees()
        + spec.num_classes()
        + spec.resources().len();
    let analysis = Analysis {
        diagnostics: diags,
        items_analyzed,
    };

    tel.counter_add("analyze/runs", 1);
    tel.counter_add("analyze/diags", analysis.diagnostics.len() as u64);
    tel.counter_add(
        "analyze/diags/fatal",
        analysis.count(Severity::Fatal) as u64,
    );
    tel.counter_add("analyze/diags/warn", analysis.count(Severity::Warn) as u64);
    tel.counter_add("analyze/diags/info", analysis.count(Severity::Info) as u64);
    tel.counter_add("analyze/dominated_options", dominated as u64);
    tel.gauge_set("analyze/items", analysis.items_analyzed as f64);
    analysis
}

/// MD008: usage times and latencies beyond the serving policy bounds.
fn window_overflow(spec: &MdesSpec, diags: &mut Vec<Diagnostic>) {
    for id in spec.option_ids() {
        let option = spec.option(id);
        let worst = option.usages.iter().map(|u| u.time.abs()).max();
        if let Some(worst) = worst {
            if worst > MAX_CHECK_TIME {
                diags.push(Diagnostic::new(
                    "MD008",
                    Severity::Fatal,
                    format!(
                        "option #{} uses a resource {worst} cycles from issue \
                         (policy bound {MAX_CHECK_TIME}): outside the physical RU window \
                         the check never constrains anything",
                        id.index()
                    ),
                ));
            }
        }
    }
    for id in spec.class_ids() {
        let class = spec.class(id);
        let lat = &class.latency;
        let worst = lat.dest.abs().max(lat.src.abs()).max(lat.mem.abs());
        if worst > MAX_LATENCY {
            diags.push(
                Diagnostic::new(
                    "MD008",
                    Severity::Fatal,
                    format!(
                        "class `{}` declares a {worst}-cycle latency (policy bound {MAX_LATENCY})",
                        class.name
                    ),
                )
                .with_item(class.name.clone())
                .with_target(Target::Class(id.index())),
            );
        }
    }
}

/// MD004: structurally identical options (same canonical usages).
fn duplicate_options(spec: &MdesSpec, diags: &mut Vec<Diagnostic>) {
    let mut seen: std::collections::BTreeMap<Vec<(usize, i32)>, usize> =
        std::collections::BTreeMap::new();
    for id in spec.option_ids() {
        let shape: Vec<(usize, i32)> = spec
            .option(id)
            .canonical_usages()
            .iter()
            .map(|u| (u.resource.index(), u.time))
            .collect();
        match seen.get(&shape) {
            Some(&first) => diags.push(Diagnostic::new(
                "MD004",
                Severity::Warn,
                format!(
                    "option #{} duplicates option #{first} (redundancy elimination would merge them)",
                    id.index()
                ),
            )),
            None => {
                seen.insert(shape, id.index());
            }
        }
    }
}

/// MD005/MD006/MD007: items unreachable from any class or opcode.  The
/// counts come from the same `sweep_unreferenced` the opt pipeline's
/// dead-code stage runs, so analyzer and optimizer can never disagree
/// about what is dead.
fn dead_items(spec: &MdesSpec, diags: &mut Vec<Diagnostic>) {
    let mut probe = spec.clone();
    let sweep = probe.sweep_unreferenced();
    if sweep.total() > 0 {
        diags.push(Diagnostic::new(
            "MD005",
            Severity::Warn,
            format!(
                "{} option(s), {} OR-tree(s) and {} AND/OR-tree(s) are not reachable from any class",
                sweep.options_removed, sweep.or_trees_removed, sweep.and_or_trees_removed
            ),
        ));
    }
    let mut used = vec![false; spec.resources().len()];
    for id in spec.option_ids() {
        for usage in &spec.option(id).usages {
            used[usage.resource.index()] = true;
        }
    }
    for (id, name) in spec.resources().iter() {
        if !used[id.index()] {
            diags.push(
                Diagnostic::new(
                    "MD006",
                    Severity::Warn,
                    format!("resource `{name}` is never used by any option"),
                )
                .with_item(name.to_string())
                .with_target(Target::Resource(id.index())),
            );
        }
    }
    for id in spec.class_ids() {
        if spec.opcodes_of_class(id).is_empty() {
            let name = spec.class(id).name.clone();
            diags.push(
                Diagnostic::new(
                    "MD007",
                    Severity::Info,
                    format!(
                        "class `{name}` has no opcodes mapped to it \
                         (internal classes are fine; otherwise it is dead vocabulary)"
                    ),
                )
                .with_item(name)
                .with_target(Target::Class(id.index())),
            );
        }
    }
}

/// MD009: nonzero forward shift constants mean usage times carry
/// removable offsets (Section 7's time-shifting, not yet applied).
fn missed_time_shift(spec: &MdesSpec, diags: &mut Vec<Diagnostic>) {
    let constants = shift_constants(spec, Direction::Forward);
    let mut shiftable: Vec<(usize, i32)> = constants
        .iter()
        .filter(|(_, &c)| c != 0)
        .map(|(r, &c)| (r.index(), c))
        .collect();
    if shiftable.is_empty() {
        return;
    }
    shiftable.sort_unstable();
    let total: i64 = shiftable.iter().map(|&(_, c)| i64::from(c.abs())).sum();
    diags.push(Diagnostic::new(
        "MD009",
        Severity::Info,
        format!(
            "{} resource(s) carry removable usage-time offsets totalling {total} cycle(s); \
             time shifting would normalize them toward issue",
            shiftable.len()
        ),
    ));
}

/// MD010: options whose check order does not probe cycle zero first
/// (Section 7's check ordering, not yet applied).
fn missed_check_ordering(spec: &MdesSpec, diags: &mut Vec<Diagnostic>) {
    let unsorted = unsorted_options(spec, Direction::Forward);
    if unsorted.is_empty() {
        return;
    }
    diags.push(Diagnostic::new(
        "MD010",
        Severity::Info,
        format!(
            "{} option(s) do not probe cycle zero first; check ordering would fail \
             conflicting attempts on the first probe",
            unsorted.len()
        ),
    ));
}

/// MD011: a usage shared by every option of a multi-option OR-tree is
/// stored (and checked) once per option instead of once per tree
/// (Section 6's common-usage factoring, not yet applied).
fn missed_factoring(spec: &MdesSpec, diags: &mut Vec<Diagnostic>) {
    for tree_id in spec.or_tree_ids() {
        let tree = spec.or_tree(tree_id);
        if tree.options.len() < 2 {
            continue;
        }
        let mut common = spec.option(tree.options[0]).canonical_usages();
        for &opt in &tree.options[1..] {
            let usages = spec.option(opt).canonical_usages();
            common.retain(|u| usages.binary_search(u).is_ok());
            if common.is_empty() {
                break;
            }
        }
        if common.is_empty() {
            continue;
        }
        let name = tree
            .name
            .clone()
            .unwrap_or_else(|| format!("#{}", tree_id.index()));
        let saving = common.len() * (tree.options.len() - 1);
        diags.push(
            Diagnostic::new(
                "MD011",
                Severity::Info,
                format!(
                    "or_tree {name}: {} usage(s) appear in all {} options; factoring would \
                     drop {saving} duplicated usage(s) and check(s)",
                    common.len(),
                    tree.options.len()
                ),
            )
            .with_item(name)
            .with_target(Target::OrTree(tree_id.index())),
        );
    }
}

/// OR-trees reachable from some class constraint, in index order, and
/// the set of options reachable through them.  Dominance and
/// unsatisfiability only speak about reachable structure: an
/// unreferenced tree can never be reserved, so nothing it could prove
/// is observable (dead *items* are MD005's business).
pub(crate) fn reachable(spec: &MdesSpec) -> (Vec<usize>, Vec<usize>) {
    let mut trees: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for class in spec.class_ids() {
        match spec.class(class).constraint {
            Constraint::Or(tree) => {
                trees.insert(tree.index());
            }
            Constraint::AndOr(tree) => {
                for or in &spec.and_or_tree(tree).or_trees {
                    trees.insert(or.index());
                }
            }
        }
    }
    let mut options: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for &tree in &trees {
        for opt in &spec
            .or_tree(mdes_core::spec::OrTreeId::from_index(tree))
            .options
        {
            options.insert(opt.index());
        }
    }
    (trees.into_iter().collect(), options.into_iter().collect())
}

/// Fills [`Diagnostic::span`] for diagnostics whose [`Diagnostic::item`]
/// is declared in `source` (HMDL text): the anchor is the first
/// `resource`/`or_tree`/`and_or_tree`/`class` declaration of that name.
/// Diagnostics about synthetic or unnamed items keep `span: None`.
pub fn anchor_spans(diags: &mut [Diagnostic], source: &str) {
    for diag in diags.iter_mut() {
        let Some(item) = &diag.item else { continue };
        diag.span = find_declaration(source, item);
    }
}

/// Locates the declaration of `name` in HMDL source: a declaration
/// keyword followed by `name` as a whole word.  Returns 1-based
/// `(line, column)` of the name token.
fn find_declaration(source: &str, name: &str) -> Option<(usize, usize)> {
    // Indexed resources are declared under their base name.
    let base = name.split('[').next().unwrap_or(name);
    for (line_no, line) in source.lines().enumerate() {
        for keyword in ["resource", "or_tree", "and_or_tree", "class"] {
            let Some(kw_at) = find_word(line, keyword) else {
                continue;
            };
            let rest = &line[kw_at + keyword.len()..];
            let trimmed = rest.trim_start();
            if let Some(found) = trimmed.strip_prefix(base) {
                let boundary = found
                    .chars()
                    .next()
                    .is_none_or(|c| !c.is_alphanumeric() && c != '_');
                if boundary {
                    let col = kw_at + keyword.len() + (rest.len() - trimmed.len());
                    return Some((line_no + 1, col + 1));
                }
            }
        }
    }
    None
}

/// Byte offset of `word` in `line` as a whole word, if present.
fn find_word(line: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(at) = line[from..].find(word) {
        let at = from + at;
        let before_ok = at == 0
            || line[..at]
                .chars()
                .next_back()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let after_ok = line[at + word.len()..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

/// Renders an analysis as the canonical `mdesc lint` text lines, one
/// diagnostic per line, prefixed with `origin` (a path or machine name)
/// and the source span when anchored.  Byte-deterministic: equal
/// analyses render equal text.
pub fn render_text(origin: &str, analysis: &Analysis) -> String {
    let mut out = String::new();
    for diag in &analysis.diagnostics {
        match diag.span {
            Some((line, col)) => {
                let _ = writeln!(
                    out,
                    "{origin}:{line}:{col}: {} {}: {}",
                    diag.code, diag.severity, diag.message
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{origin}: {} {}: {}",
                    diag.code, diag.severity, diag.message
                );
            }
        }
    }
    out
}

/// Renders an analysis as a JSON array (zero-dependency, like the
/// telemetry report writer).  Byte-deterministic.
pub fn render_json(origin: &str, analysis: &Analysis) -> String {
    render_json_many([(origin, analysis)])
}

/// Renders several `(origin, analysis)` reports as one JSON array, in
/// order — what `mdesc lint --json` emits when it covers more than one
/// machine.  Byte-deterministic; a single-element iterator reproduces
/// [`render_json`] exactly.
pub fn render_json_many<'a, I>(targets: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a Analysis)>,
{
    let entries: Vec<(&str, &Diagnostic)> = targets
        .into_iter()
        .flat_map(|(origin, analysis)| analysis.diagnostics.iter().map(move |d| (origin, d)))
        .collect();
    let mut out = String::new();
    out.push_str("[\n");
    for (i, (origin, diag)) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"origin\": \"{}\", \"code\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"",
            escape(origin),
            diag.code,
            diag.severity,
            escape(&diag.message)
        );
        if let Some(item) = &diag.item {
            let _ = write!(out, ", \"item\": \"{}\"", escape(item));
        }
        if let Some((line, col)) = diag.span {
            let _ = write!(out, ", \"line\": {line}, \"col\": {col}");
        }
        out.push('}');
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_opt::pipeline::{optimize, PipelineConfig};

    fn compile(src: &str) -> MdesSpec {
        mdes_lang::compile(src).unwrap()
    }

    const MESSY: &str = "
        resource Dec[2];
        resource Ghost;
        or_tree T = first_of(
            { Dec[0] @ 0 },
            { Dec[0] @ 0 },              // duplicate
            { Dec[0] @ 0, Dec[1] @ 0 }); // dominated
        or_tree Orphan = first_of({ Dec[1] @ 3 });
        class alu { constraint = T; }
    ";

    #[test]
    fn messy_description_triggers_every_maintenance_code() {
        let analysis = analyze_spec(&compile(MESSY));
        let codes: Vec<&str> = analysis.diagnostics.iter().map(|d| d.code).collect();
        for expected in ["MD002", "MD004", "MD005", "MD006", "MD007"] {
            assert!(codes.contains(&expected), "missing {expected}: {codes:?}");
        }
        assert!(!analysis.has_fatal());
    }

    #[test]
    fn tidy_description_is_clean() {
        let analysis = analyze_spec(&compile(
            "resource M;
             or_tree T = first_of({ M @ 0 });
             class mem { constraint = T; flags = load; }
             op LD = mem;",
        ));
        assert!(
            analysis.diagnostics.is_empty(),
            "{:?}",
            analysis.diagnostics
        );
    }

    #[test]
    fn analysis_is_deterministic_and_read_only() {
        let spec = compile(MESSY);
        let before = spec.clone();
        let first = analyze_spec(&spec);
        let second = analyze_spec(&spec);
        assert_eq!(first, second);
        assert_eq!(render_text("m", &first), render_text("m", &second));
        assert_eq!(spec, before);
    }

    #[test]
    fn dead_items_match_the_pipelines_own_sweep() {
        let spec = compile(MESSY);
        let analysis = analyze_spec(&spec);
        let mut swept = spec.clone();
        let report = swept.sweep_unreferenced();
        let md005 = analysis.diagnostics.iter().find(|d| d.code == "MD005");
        assert!(report.total() > 0);
        assert!(md005.is_some());
        // After the full pipeline the dead items are gone and the
        // analyzer agrees: the cross-check in both directions.
        let mut optimized = spec;
        optimize(&mut optimized, &PipelineConfig::full());
        let after = analyze_spec(&optimized);
        assert!(
            !after.diagnostics.iter().any(|d| d.code == "MD005"),
            "{:?}",
            after.diagnostics
        );
    }

    #[test]
    fn window_overflow_is_fatal() {
        let mut spec = MdesSpec::new();
        let r = spec.resources_mut().add("R").unwrap();
        let opt = spec.add_option(mdes_core::spec::TableOption::new(vec![
            mdes_core::usage::ResourceUsage::new(r, MAX_CHECK_TIME + 1),
        ]));
        let tree = spec.add_or_tree(mdes_core::spec::OrTree::new(vec![opt]));
        spec.add_class(
            "op",
            Constraint::Or(tree),
            mdes_core::spec::Latency::new(1),
            mdes_core::spec::OpFlags::none(),
        )
        .unwrap();
        let analysis = analyze_spec(&spec);
        assert!(analysis.has_fatal());
        assert_eq!(analysis.first_fatal().unwrap().code, "MD008");
    }

    #[test]
    fn missed_transformation_lints_fire_and_clear() {
        let raw = compile(
            "resource Bus;
             resource Dec[2];
             or_tree T = first_of(
                 { Bus @ 2, Dec[0] @ 3 },
                 { Bus @ 2, Dec[1] @ 3 });
             class alu { constraint = T; }
             op ADD = alu;",
        );
        let analysis = analyze_spec(&raw);
        let codes: Vec<&str> = analysis.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"MD009"), "{codes:?}"); // Bus always at +2
        assert!(codes.contains(&"MD011"), "{codes:?}"); // Bus common to both
    }

    #[test]
    fn spans_anchor_to_declarations() {
        let source = "resource M;\nor_tree T = first_of({ M @ 0 });\nclass idle { constraint = T; }\nclass used { constraint = T; }\nop NOP = used;";
        let spec = compile(source);
        let mut analysis = analyze_spec(&spec);
        anchor_spans(&mut analysis.diagnostics, source);
        let idle = analysis
            .diagnostics
            .iter()
            .find(|d| d.item.as_deref() == Some("idle"))
            .expect("class-without-opcodes diagnostic");
        assert_eq!(idle.span, Some((3, 7)));
    }

    #[test]
    fn registry_covers_every_emitted_code() {
        let registered: Vec<&str> = CODE_REGISTRY.iter().map(|(c, _, _)| *c).collect();
        let spec = compile(MESSY);
        for diag in analyze_spec(&spec).diagnostics {
            assert!(
                registered.contains(&diag.code),
                "{} unregistered",
                diag.code
            );
        }
    }

    #[test]
    fn json_rendering_is_valid_enough_and_deterministic() {
        let spec = compile(MESSY);
        let a = render_json("messy", &analyze_spec(&spec));
        let b = render_json("messy", &analyze_spec(&spec));
        assert_eq!(a, b);
        assert!(a.starts_with("[\n"));
        assert!(a.trim_end().ends_with(']'));
        assert!(a.contains("\"code\": \"MD002\""));
    }
}
