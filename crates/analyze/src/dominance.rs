//! Dominance proofs: options that can never be selected.
//!
//! The paper's Section 5 check is syntactic: option B is dominated by a
//! higher-priority option A when B's usages are a superset of A's —
//! whenever B's resources are free, A's are too, so the priority walk
//! stops at A.  [`mdes_opt::dominance`] removes exactly those.
//!
//! The semantic extension here reasons about *reachable RU-map states*
//! instead of arbitrary ones.  Every busy cell in the map was put there
//! by a reservation of some option `C` of the same description (the
//! checkers reserve nothing else).  For an ordered option pair, the
//! *difference set* `D(C, X) = { t_C − t_X | C and X use a common
//! resource at t_C and t_X }` is the set of issue-time deltas at which a
//! C-reservation occupies a cell X probes — the same difference-set
//! construction as the collision vectors of
//! [`mdes_core::collision`], without the sign restriction (a blocking
//! reservation can sit later in the map than the probe).
//!
//! **Claim.** If `D(C, A) ⊆ D(C, B)` for every reachable option `C`,
//! then at any issue time against any reachable map state, "A blocked"
//! implies "B blocked" — each busy cell that intersects A came from some
//! reservation `(C, S)` with delta `T − S ∈ D(C, A) ⊆ D(C, B)`, so that
//! same reservation occupies a cell B probes.  Contrapositive: B free ⟹
//! A free ⟹ the priority walk selects A (or something even earlier).
//! B can never be selected.
//!
//! The syntactic superset implies the semantic condition (extra usages
//! only grow every `D(·, B)`), so this check is strictly more powerful:
//! it also proves dominance between options on *mirrored* resources that
//! every reachable option uses in lockstep — the copy-paste case where
//! two alternatives name different units that are always reserved
//! together.  Every proof is checked dynamically by
//! `tests/analyze_soundness.rs`: a dead option must never appear in a
//! checker's `Choice` on any seeded probe stream.

use std::collections::BTreeSet;

use mdes_core::spec::MdesSpec;

use crate::{reachable, Diagnostic, Severity, Target};

/// Emits MD002/MD003 diagnostics for dominated option positions and
/// returns the number of `(tree, option)` pairs proved dead.
///
/// A diagnostic is emitted per dominated *position*; a `(tree, option)`
/// pair only becomes a [`Target::OrTreeOption`] (and thus a member of
/// [`crate::Analysis::dead_options`]) when every position the option id
/// occupies in that tree is dominated — an id listed twice is dead only
/// if both occurrences are.
pub(crate) fn dominance_diagnostics(spec: &MdesSpec, diags: &mut Vec<Diagnostic>) -> usize {
    let (trees, options) = reachable(spec);
    // Difference sets are quadratic in option pairs; cache canonical
    // usages once.
    let canon: Vec<Vec<mdes_core::usage::ResourceUsage>> = spec
        .option_ids()
        .map(|id| spec.option(id).canonical_usages())
        .collect();
    let mut dead = 0usize;

    for &tree_index in &trees {
        let tree = spec.or_tree(mdes_core::spec::OrTreeId::from_index(tree_index));
        let tree_name = tree
            .name
            .clone()
            .unwrap_or_else(|| format!("#{tree_index}"));
        // position -> Some(code, winner position) when dominated.
        let mut verdicts: Vec<Option<(&'static str, usize)>> = vec![None; tree.options.len()];
        for (j, &candidate) in tree.options.iter().enumerate() {
            for (i, &winner) in tree.options.iter().enumerate().take(j) {
                if spec.option(candidate).covers(spec.option(winner)) {
                    verdicts[j] = Some(("MD002", i));
                    break;
                }
                if difference_dominates(spec, &options, winner.index(), candidate.index(), &canon) {
                    verdicts[j] = Some(("MD003", i));
                    break;
                }
            }
        }

        // An option id is dead in this tree iff all its positions are
        // dominated.
        let mut dead_ids: BTreeSet<usize> = BTreeSet::new();
        for &opt in &tree.options {
            let all_dominated = tree
                .options
                .iter()
                .enumerate()
                .filter(|(_, &o)| o == opt)
                .all(|(pos, _)| verdicts[pos].is_some());
            if all_dominated {
                dead_ids.insert(opt.index());
            }
        }
        dead += dead_ids.len();

        for (j, verdict) in verdicts.iter().enumerate() {
            let Some((code, winner)) = verdict else {
                continue;
            };
            let option_index = tree.options[j].index();
            let proof = match *code {
                "MD002" => "its usages are a superset of",
                _ => "every reachable reservation that blocks",
            };
            let target = if dead_ids.contains(&option_index) {
                Target::OrTreeOption {
                    tree: tree_index,
                    option: option_index,
                }
            } else {
                Target::None
            };
            let message = match *code {
                "MD002" => format!(
                    "or_tree {tree_name}: option #{option_index} (position {}) can never be \
                     selected — {proof} higher-priority option #{} (position {})",
                    j + 1,
                    tree.options[*winner].index(),
                    winner + 1
                ),
                _ => format!(
                    "or_tree {tree_name}: option #{option_index} (position {}) can never be \
                     selected — {proof} option #{} (position {}) also blocks it \
                     (difference-set proof)",
                    j + 1,
                    tree.options[*winner].index(),
                    winner + 1
                ),
            };
            diags.push(
                Diagnostic::new(code, Severity::Warn, message)
                    .with_item(tree_name.clone())
                    .with_target(target),
            );
        }
    }
    dead
}

/// True when `D(C, winner) ⊆ D(C, candidate)` for every reachable
/// option `C`: any reservation blocking the winner also blocks the
/// candidate, so the candidate can never be the first free option.
fn difference_dominates(
    _spec: &MdesSpec,
    reachable_options: &[usize],
    winner: usize,
    candidate: usize,
    canon: &[Vec<mdes_core::usage::ResourceUsage>],
) -> bool {
    for &c in reachable_options {
        let d_winner = difference_set(&canon[c], &canon[winner]);
        if d_winner.is_empty() {
            continue;
        }
        let d_candidate = difference_set(&canon[c], &canon[candidate]);
        if !d_winner.is_subset(&d_candidate) {
            return false;
        }
    }
    true
}

/// `D(C, X)`: issue-time deltas `t_C − t_X` over usages of a common
/// resource.  `usages` must be canonical (sorted); only resource
/// equality matters, so a plain double loop over the (small) usage
/// lists is fine.
fn difference_set(
    c: &[mdes_core::usage::ResourceUsage],
    x: &[mdes_core::usage::ResourceUsage],
) -> BTreeSet<i32> {
    let mut out = BTreeSet::new();
    for uc in c {
        for ux in x {
            if uc.resource == ux.resource {
                out.insert(uc.time - ux.time);
            }
        }
    }
    out
}

/// Difference sets double as collision vectors: restricting to
/// non-negative deltas recovers [`mdes_core::collision::forbidden_latencies`].
#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::collision::forbidden_latencies;
    use mdes_core::spec::{Constraint, Latency, OpFlags, OrTree, TableOption};
    use mdes_core::usage::ResourceUsage;
    use mdes_core::ResourceId;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    #[test]
    fn difference_set_extends_the_collision_vector() {
        let a = TableOption::new(vec![u(0, 0), u(0, 3), u(1, 1)]);
        let b = TableOption::new(vec![u(0, 1), u(1, 0)]);
        let cv = forbidden_latencies(&a, &b);
        let ds = difference_set(&a.canonical_usages(), &b.canonical_usages());
        for t in cv {
            assert!(ds.contains(&t), "collision vector latency {t} missing");
        }
        assert!(ds.contains(&-1), "negative deltas must be covered too");
    }

    /// The lockstep case the syntactic check cannot see.  Options
    /// A = {P@0, Q@0} and B = {P@0, R@0} share the port P; across the
    /// whole description Q is only ever reserved alongside P at the same
    /// cycle.  So any reservation occupying Q@T (blocking A) also
    /// occupies P@T (blocking B): B free ⟹ A free ⟹ the priority walk
    /// takes A.  B is semantically dead even though its usages are not a
    /// superset of A's.
    #[test]
    fn lockstep_resources_prove_semantic_dominance() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("P").unwrap(); // r0: shared port
        spec.resources_mut().add("Q").unwrap(); // r1: A's unit
        spec.resources_mut().add("R").unwrap(); // r2: B's unit
        let a = spec.add_option(TableOption::new(vec![u(0, 0), u(1, 0)]));
        let b = spec.add_option(TableOption::new(vec![u(0, 0), u(2, 0)]));
        let late = spec.add_option(TableOption::new(vec![u(0, 1)]));
        let alt = spec.add_or_tree(OrTree::named("Alt", vec![a, b]));
        let other = spec.add_or_tree(OrTree::named("Late", vec![late]));
        spec.add_class("alt", Constraint::Or(alt), Latency::new(1), OpFlags::none())
            .unwrap();
        spec.add_class(
            "late",
            Constraint::Or(other),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        spec.validate().unwrap();

        // B is NOT a syntactic superset of A (it lacks Q@0)…
        assert!(!spec.option(b).covers(spec.option(a)));
        // …but for every reachable option C ∈ {a, b, late},
        // D(C, a) = D(C, b) through the shared port P, so anything
        // blocking A also blocks B: semantic dominance.
        let mut diags = Vec::new();
        let dead = dominance_diagnostics(&spec, &mut diags);
        assert_eq!(dead, 1, "{diags:?}");
        assert!(diags.iter().any(|d| d.code == "MD003"), "{diags:?}");
        assert!(diags.iter().any(|d| d.target
            == Target::OrTreeOption {
                tree: alt.index(),
                option: b.index(),
            }));
    }

    /// Distinct units with independent contention: no dominance.
    #[test]
    fn independent_units_are_not_dominated() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("U", 2).unwrap();
        let u0 = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let u1 = spec.add_option(TableOption::new(vec![u(1, 0)]));
        let tree = spec.add_or_tree(OrTree::named("AnyU", vec![u0, u1]));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        let mut diags = Vec::new();
        let dead = dominance_diagnostics(&spec, &mut diags);
        assert_eq!(dead, 0, "{diags:?}");
        assert!(diags.is_empty());
    }

    /// The syntactic case still reports (as MD002) and both checks agree
    /// with the opt pipeline's eliminator about *what* is dominated.
    #[test]
    fn syntactic_supersets_report_md002() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("D", 2).unwrap();
        let lean = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let fat = spec.add_option(TableOption::new(vec![u(0, 0), u(1, 0)]));
        let tree = spec.add_or_tree(OrTree::named("T", vec![lean, fat]));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        let mut diags = Vec::new();
        let dead = dominance_diagnostics(&spec, &mut diags);
        assert_eq!(dead, 1);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "MD002");

        let mut eliminated = spec.clone();
        let report = mdes_opt::eliminate_dominated_options(&mut eliminated);
        assert_eq!(report.options_removed, 1);
    }

    /// A duplicated option id: dead only because *every* occurrence is
    /// dominated (the first occurrence dominates the second).
    #[test]
    fn duplicate_reference_positions_are_handled_per_position() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("R").unwrap();
        let only = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let twice = spec.add_or_tree(OrTree::named("Twice", vec![only, only]));
        spec.add_class(
            "op",
            Constraint::Or(twice),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        let mut diags = Vec::new();
        let dead = dominance_diagnostics(&spec, &mut diags);
        // Position 2 is dominated by position 1, but the *id* still has a
        // live occurrence at position 1 — not dead.
        assert_eq!(dead, 0, "{diags:?}");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].target, Target::None);
    }
}
