//! Hot-reload semantics: admission-time image capture, corrupt-image
//! rollback, no-op detection, the content cache, and mid-stream
//! determinism under a closed-loop verified client.

mod common;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use common::{expected_answer, reply_hash, schedule_line, start, wait_for_stats, TestConn};
use mdes_guard::{corrupt_image, ImageFault};
use mdes_machines::Machine;
use mdes_serve::{
    compile_machine, content_hash, run_load, LoadOptions, ReloadEvent, ServeConfig, WorkParams,
};
use mdes_telemetry::json::Json;

static FILE_ID: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to a unique temp file and returns its path.
fn plant(tag: &str, bytes: &[u8]) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "mdes-reload-{tag}-{}-{}.lmdes",
        std::process::id(),
        FILE_ID.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, bytes).expect("write image");
    path
}

fn image_bytes(machine: Machine) -> Vec<u8> {
    mdes_core::lmdes::write(&compile_machine(machine))
}

#[test]
fn requests_admitted_before_a_swap_are_served_by_the_old_image() {
    let config = ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    };
    let (handle, addr) = start(Machine::K5, "swap", config);
    let old_mdes = compile_machine(Machine::K5);
    let old_hash = content_hash(&image_bytes(Machine::K5));
    let pentium = plant("pentium", &image_bytes(Machine::Pentium));

    // A occupies the lone worker so B stays queued across the reload.
    let mut a = TestConn::open(&addr);
    a.send_line(&schedule_line(
        1,
        WorkParams {
            regions: 4096,
            mean_ops: 64,
            seed: 0xB10C,
            jobs: 1,
        },
        None,
    ));
    wait_for_stats(&addr, |r| {
        r.get("in_flight").and_then(Json::as_u64) == Some(1)
            && r.get("queue_depth").and_then(Json::as_u64) == Some(0)
    });

    // B is admitted now — its image is captured at admission.
    let mut b = TestConn::open(&addr);
    let params = WorkParams {
        regions: 5,
        mean_ops: 6,
        seed: 42,
        jobs: 1,
    };
    b.send_line(&schedule_line(2, params, None));
    wait_for_stats(&addr, |r| {
        r.get("queue_depth").and_then(Json::as_u64) == Some(1)
    });

    // The swap happens while B is still queued.
    let mut c = TestConn::open(&addr);
    let reply = c.round_trip(&format!(
        "{{\"id\": 3, \"verb\": \"reload\", \"path\": {}}}",
        Json::Str(pentium.display().to_string()).render()
    ));
    assert!(reply.ok, "{:?}", reply.body);
    assert_eq!(reply.result_u64("epoch"), Some(1));

    // B's answer still comes from the pre-swap K5 image.
    assert!(a.read_reply().unwrap().ok);
    let reply = b.read_reply().unwrap();
    assert!(reply.ok, "{:?}", reply.body);
    assert_eq!(reply.result_u64("epoch"), Some(0));
    assert_eq!(reply_hash(&reply), old_hash);
    let (cycles, ops) = expected_answer(&old_mdes, params);
    assert_eq!(reply.result_u64("cycles"), Some(cycles as u64));
    assert_eq!(reply.result_u64("ops"), Some(ops));

    // A request admitted after the swap sees the new image.
    let reply = c.round_trip(&schedule_line(4, params, None));
    assert_eq!(reply.result_u64("epoch"), Some(1));
    let (cycles, _) = expected_answer(&compile_machine(Machine::Pentium), params);
    assert_eq!(reply.result_u64("cycles"), Some(cycles as u64));

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_file(pentium);
}

#[test]
fn corrupt_images_are_rejected_and_the_old_image_keeps_serving() {
    let (handle, addr) = start(Machine::K5, "rollback", ServeConfig::default());
    let old_hash = content_hash(&image_bytes(Machine::K5));
    let mut conn = TestConn::open(&addr);

    for (i, fault) in ImageFault::fatal().into_iter().enumerate() {
        let corrupt = plant(
            fault.name(),
            &corrupt_image(&image_bytes(Machine::K5), fault, 0xBAD + i as u64),
        );
        let reply = conn.round_trip(&format!(
            "{{\"id\": {i}, \"verb\": \"reload\", \"path\": {}}}",
            Json::Str(corrupt.display().to_string()).render()
        ));
        assert!(!reply.ok, "{fault} must be rejected");
        // Decoder rejections are parse errors; vet rejections are
        // validation errors.  Either way the ladder stops before 4.
        let num = reply.error_num().unwrap();
        assert!(num == 2 || num == 3, "{fault} gave code {num}");
        let _ = std::fs::remove_file(corrupt);
    }

    // Still epoch 0, still the boot image, still correct answers.
    let reply = conn.round_trip("{\"id\": 50, \"verb\": \"query\"}");
    assert_eq!(reply.result_u64("epoch"), Some(0));
    assert_eq!(reply_hash(&reply), old_hash);

    let params = WorkParams {
        regions: 4,
        mean_ops: 6,
        seed: 3,
        jobs: 1,
    };
    let reply = conn.round_trip(&schedule_line(60, params, None));
    let (cycles, _) = expected_answer(&compile_machine(Machine::K5), params);
    assert_eq!(reply.result_u64("cycles"), Some(cycles as u64));

    let reply = conn.round_trip("{\"id\": 70, \"verb\": \"stats\"}");
    assert_eq!(
        reply.result_u64("reload_failures"),
        Some(ImageFault::fatal().len() as u64)
    );
    assert_eq!(reply.result_u64("reloads"), Some(0));

    handle.shutdown();
    handle.join();
}

#[test]
fn identical_reloads_are_noops_and_round_trips_hit_the_cache() {
    let (handle, addr) = start(Machine::K5, "cache", ServeConfig::default());
    let k5 = plant("k5", &image_bytes(Machine::K5));
    let pentium = plant("pentium", &image_bytes(Machine::Pentium));
    let mut conn = TestConn::open(&addr);
    let reload = |conn: &mut TestConn, id: u64, path: &PathBuf| {
        conn.round_trip(&format!(
            "{{\"id\": {id}, \"verb\": \"reload\", \"path\": {}}}",
            Json::Str(path.display().to_string()).render()
        ))
    };

    // Reloading the bytes already serving changes nothing.
    let reply = reload(&mut conn, 1, &k5);
    assert!(reply.ok);
    assert_eq!(
        reply.body.get("result").and_then(|r| r.get("changed")),
        Some(&Json::Bool(false))
    );
    assert_eq!(reply.result_u64("epoch"), Some(0));

    // First Pentium promotion compiles fresh.
    let reply = reload(&mut conn, 2, &pentium);
    assert_eq!(
        reply.body.get("result").and_then(|r| r.get("cache_hit")),
        Some(&Json::Bool(false))
    );
    assert_eq!(reply.result_u64("epoch"), Some(1));

    // Back to K5: the boot image is cached, so no recompilation.
    let reply = reload(&mut conn, 3, &k5);
    assert_eq!(
        reply.body.get("result").and_then(|r| r.get("cache_hit")),
        Some(&Json::Bool(true))
    );
    assert_eq!(reply.result_u64("epoch"), Some(2));

    // Pentium again: cached from its own first promotion.
    let reply = reload(&mut conn, 4, &pentium);
    assert_eq!(
        reply.body.get("result").and_then(|r| r.get("cache_hit")),
        Some(&Json::Bool(true))
    );
    assert_eq!(reply.result_u64("epoch"), Some(3));

    let reply = conn.round_trip("{\"id\": 9, \"verb\": \"stats\"}");
    assert_eq!(reply.result_u64("reload_noops"), Some(1));
    assert_eq!(reply.result_u64("reloads"), Some(3));
    assert_eq!(reply.result_u64("reload_cache_hits"), Some(2));

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_file(k5);
    let _ = std::fs::remove_file(pentium);
}

#[test]
fn mid_stream_reload_keeps_every_answer_verifiable() {
    let (handle, addr) = start(Machine::K5, "midstream", ServeConfig::default());
    let pentium = plant("pentium", &image_bytes(Machine::Pentium));

    let report = run_load(&LoadOptions {
        addr: addr.clone(),
        connections: 2,
        requests: 60,
        params: WorkParams {
            regions: 4,
            mean_ops: 6,
            seed: 0x11AD,
            jobs: 1,
        },
        pipeline: 1,
        machines: Vec::new(),
        deadline_ms: None,
        reloads: vec![ReloadEvent {
            at: 30,
            path: pentium.display().to_string(),
            machine: None,
            expect_rejection: false,
        }],
        known_sources: vec![image_bytes(Machine::K5), image_bytes(Machine::Pentium)],
        verify_responses: true,
        shutdown_when_done: false,
        max_retries: 8,
    })
    .expect("load run");

    assert!(report.is_clean(), "{:?}", report.errors);
    assert_eq!(report.answered, 60);
    assert_eq!(report.unverified, 0, "{:?}", report.errors);
    assert_eq!(report.reload_acks, 1);

    // The daemon ended up serving the Pentium image.
    let mut conn = TestConn::open(&addr);
    let reply = conn.round_trip("{\"id\": 1, \"verb\": \"query\"}");
    assert_eq!(reply.result_u64("epoch"), Some(1));
    assert_eq!(
        reply_hash(&reply),
        content_hash(&image_bytes(Machine::Pentium))
    );

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_file(pentium);
}
