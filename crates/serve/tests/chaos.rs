//! The chaos harness: a verified closed-loop client runs against a
//! daemon while an attacker thread injects every serve-level fault mode
//! (garbage frames, oversized frames, slow-loris stalls, poison panics)
//! and the script fires both a good and a corrupt hot reload.  The
//! acceptance invariant: zero dropped requests, zero wrong answers, zero
//! reload surprises, nothing left in flight.

mod common;

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use common::{start, TestConn};
use mdes_guard::{corrupt_image, ImageFault};
use mdes_machines::Machine;
use mdes_serve::{compile_machine, run_load, LoadOptions, ReloadEvent, ServeConfig, WorkParams};

fn plant(tag: &str, bytes: &[u8]) -> PathBuf {
    let path = std::env::temp_dir().join(format!("mdes-chaos-{tag}-{}.lmdes", std::process::id()));
    std::fs::write(&path, bytes).expect("write image");
    path
}

/// Every fault mode the daemon must absorb without disturbing the
/// verified load: runs on its own connections, never the client's.
fn attacker(addr: &mdes_serve::BindAddr, read_timeout_ms: u64) -> u64 {
    let mut poisons = 0u64;

    // Garbage frames: the connection gets parse errors and survives.
    let mut conn = TestConn::open(addr);
    for line in ["%%% not json %%%", "{\"id\": 1, \"verb\": 42}", "{]"] {
        let reply = conn.round_trip(line);
        assert!(!reply.ok);
    }

    // Truncated-then-completed frame: split across writes, still parses.
    conn.send_raw(b"{\"id\": 5, \"ver");
    std::thread::sleep(Duration::from_millis(20));
    conn.send_raw(b"b\": \"query\"}\n");
    assert!(conn.read_reply().unwrap().ok);

    // Poison: each panic is isolated to its own request.
    for id in 0..3u64 {
        let reply = conn.round_trip(&format!("{{\"id\": {id}, \"verb\": \"poison\"}}"));
        assert_eq!(reply.error_num(), Some(7));
        poisons += 1;
    }

    // Oversized frame: an error reply, then the daemon hangs up.
    let mut big = TestConn::open(addr);
    big.send_raw(&vec![b'{'; mdes_serve::MAX_FRAME + 1024]);
    let reply = big.read_reply().expect("oversize error reply");
    assert_eq!(reply.error_num(), Some(2));
    assert!(big.read_reply().is_err(), "oversized connection must close");

    // Slow loris: a partial frame that dangles past the read timeout
    // gets the connection dropped.
    let mut slow = TestConn::open(addr);
    slow.send_raw(b"{\"id\": 6, \"verb\": \"qu");
    std::thread::sleep(Duration::from_millis(read_timeout_ms + 400));
    slow.send_raw_lossy(b"ery\"}\n");
    assert!(slow.read_reply().is_err(), "stalled connection must drop");

    poisons
}

#[test]
fn the_daemon_survives_chaos_while_answering_every_request_correctly() {
    let read_timeout_ms = 300;
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 8,
        read_timeout_ms,
        default_deadline_ms: None,
        chaos: true,
        seed: 0x5E17E,
    };
    let (handle, addr) = start(Machine::K5, "chaos", config);
    let k5_bytes = mdes_core::lmdes::write(&compile_machine(Machine::K5));
    let pentium_bytes = mdes_core::lmdes::write(&compile_machine(Machine::Pentium));
    let pentium = plant("pentium", &pentium_bytes);
    let corrupt = plant(
        "corrupt",
        &corrupt_image(&k5_bytes, ImageFault::HugeCount, 0xBADF00D),
    );

    let requests = 240;
    let options = LoadOptions {
        addr: addr.clone(),
        connections: 4,
        requests,
        params: WorkParams {
            regions: 4,
            mean_ops: 6,
            seed: 0xC4A05,
            jobs: 1,
        },
        pipeline: 1,
        machines: Vec::new(),
        deadline_ms: None,
        reloads: vec![
            ReloadEvent {
                at: 60,
                path: pentium.display().to_string(),
                machine: None,
                expect_rejection: false,
            },
            ReloadEvent {
                at: 140,
                path: corrupt.display().to_string(),
                machine: None,
                expect_rejection: true,
            },
        ],
        known_sources: vec![k5_bytes, pentium_bytes],
        verify_responses: true,
        shutdown_when_done: false,
        max_retries: 16,
    };

    let (report, poisons) = std::thread::scope(|scope| {
        let load = scope.spawn(|| run_load(&options).expect("load run"));
        let mayhem = scope.spawn(|| attacker(&addr, read_timeout_ms));
        (
            load.join().expect("client"),
            mayhem.join().expect("attacker"),
        )
    });

    // The acceptance invariant: every well-formed request answered
    // correctly, throughout the chaos.
    assert!(
        report.is_clean(),
        "dropped={} mismatches={} surprises={} errors={:?}",
        report.dropped,
        report.mismatches,
        report.reload_surprises,
        report.errors
    );
    assert_eq!(report.answered, requests as u64);
    assert_eq!(report.unverified, 0, "{:?}", report.errors);
    assert_eq!(report.reload_acks, 1);
    assert_eq!(report.reload_rejections, 1);

    let stats = Arc::clone(handle.stats());
    handle.shutdown();
    handle.join();

    // Nothing hung, nothing dropped, every fault mode exercised and
    // counted, and the engine itself never panicked.
    assert_eq!(stats.in_flight(), 0);
    assert!(stats.parse_errors.load(Ordering::Relaxed) >= 3);
    assert_eq!(stats.oversized_frames.load(Ordering::Relaxed), 1);
    assert_eq!(stats.slow_loris_drops.load(Ordering::Relaxed), 1);
    assert_eq!(stats.panics.load(Ordering::Relaxed), poisons);
    assert_eq!(stats.engine_panics.load(Ordering::Relaxed), 0);
    assert_eq!(stats.reloads.load(Ordering::Relaxed), 1);
    assert_eq!(stats.reload_failures.load(Ordering::Relaxed), 1);

    let _ = std::fs::remove_file(pentium);
    let _ = std::fs::remove_file(corrupt);
}
