//! Protocol-v2 semantics: pipelined out-of-order completion, duplicate
//! and missing ids, v1 byte-compatible serial ordering, shard routing,
//! and per-shard isolation of shedding, deadlines, and reloads.

mod common;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use common::{expected_answer, reply_hash, start, start_sharded, wait_for_stats, TestConn};
use mdes_machines::Machine;
use mdes_serve::{
    compile_machine, content_hash, run_load, LoadOptions, ReloadEvent, ServeConfig, WorkParams,
};
use mdes_telemetry::json::Json;

static FILE_ID: AtomicU64 = AtomicU64::new(0);

fn plant(tag: &str, bytes: &[u8]) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "mdes-pipeline-{tag}-{}-{}.lmdes",
        std::process::id(),
        FILE_ID.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, bytes).expect("write image");
    path
}

fn image_bytes(machine: Machine) -> Vec<u8> {
    mdes_core::lmdes::write(&compile_machine(machine))
}

/// A pipelined (id-carrying) schedule line, optionally shard-routed.
fn v2_line(id: u64, params: WorkParams, machine: Option<&str>) -> String {
    let machine = match machine {
        Some(name) => format!(", \"machine\": \"{name}\""),
        None => String::new(),
    };
    format!(
        "{{\"id\": {id}, \"verb\": \"schedule\", \"regions\": {}, \"mean_ops\": {}, \
         \"seed\": {}, \"jobs\": {}{machine}}}",
        params.regions, params.mean_ops, params.seed, params.jobs
    )
}

/// An id-less (v1-serial) schedule line.
fn v1_line(params: WorkParams) -> String {
    format!(
        "{{\"verb\": \"schedule\", \"regions\": {}, \"mean_ops\": {}, \
         \"seed\": {}, \"jobs\": {}}}",
        params.regions, params.mean_ops, params.seed, params.jobs
    )
}

fn big() -> WorkParams {
    WorkParams {
        regions: 4096,
        mean_ops: 64,
        seed: 0xB16,
        jobs: 1,
    }
}

fn tiny() -> WorkParams {
    WorkParams {
        regions: 2,
        mean_ops: 3,
        seed: 0x717,
        jobs: 1,
    }
}

#[test]
fn pipelined_replies_complete_out_of_admission_order() {
    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let (handle, addr) = start(Machine::K5, "ooo", config);
    let mdes = compile_machine(Machine::K5);

    // Both frames are written before any reply is read: a huge job
    // first, a trivial one second.  With two workers the trivial job
    // finishes while the huge one is still scheduling, so the second
    // request's reply arrives first — the pipelined path must not
    // serialize them.
    let mut conn = TestConn::open(&addr);
    conn.send_line(&v2_line(1, big(), None));
    conn.send_line(&v2_line(2, tiny(), None));

    let first = conn.read_reply().unwrap();
    let second = conn.read_reply().unwrap();
    assert!(
        first.ok && second.ok,
        "{:?} / {:?}",
        first.body,
        second.body
    );
    assert_eq!(
        first.id, 2,
        "the trivial job's reply must overtake the huge job"
    );
    assert_eq!(second.id, 1);

    // Out-of-order delivery did not cross the answers.
    let (cycles, ops) = expected_answer(&mdes, tiny());
    assert_eq!(first.result_u64("cycles"), Some(cycles as u64));
    assert_eq!(first.result_u64("ops"), Some(ops));
    let (cycles, ops) = expected_answer(&mdes, big());
    assert_eq!(second.result_u64("cycles"), Some(cycles as u64));
    assert_eq!(second.result_u64("ops"), Some(ops));

    handle.shutdown();
    handle.join();
}

#[test]
fn idless_frames_keep_strict_serial_order() {
    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let (handle, addr) = start(Machine::K5, "serial", config);
    let mdes = compile_machine(Machine::K5);

    // The same big-then-tiny shape as the pipelined test, but id-less:
    // a v1 client's replies must come back in request order (each one
    // echoing id 0) even though the tiny job would finish first.
    let mut conn = TestConn::open(&addr);
    conn.send_line(&v1_line(big()));
    conn.send_line(&v1_line(tiny()));

    let first = conn.read_reply().unwrap();
    let second = conn.read_reply().unwrap();
    assert!(first.ok && second.ok);
    assert_eq!(first.id, 0, "v1 replies echo id 0");
    assert_eq!(second.id, 0);
    let (cycles, _) = expected_answer(&mdes, big());
    assert_eq!(
        first.result_u64("cycles"),
        Some(cycles as u64),
        "serial replies must arrive in request order"
    );
    let (cycles, _) = expected_answer(&mdes, tiny());
    assert_eq!(second.result_u64("cycles"), Some(cycles as u64));

    handle.shutdown();
    handle.join();
}

#[test]
fn duplicate_ids_are_echoed_not_deduplicated() {
    let (handle, addr) = start(Machine::K5, "dup", ServeConfig::default());
    let mdes = compile_machine(Machine::K5);

    // The daemon treats ids as opaque correlation tokens: two in-flight
    // requests sharing an id get two replies, both echoing it.
    let a = tiny();
    let b = WorkParams { seed: 0x999, ..a };
    let mut conn = TestConn::open(&addr);
    conn.send_line(&v2_line(5, a, None));
    conn.send_line(&v2_line(5, b, None));

    let mut got = vec![conn.read_reply().unwrap(), conn.read_reply().unwrap()];
    assert!(got.iter().all(|r| r.ok && r.id == 5));
    let mut cycles: Vec<u64> = got
        .drain(..)
        .map(|r| r.result_u64("cycles").unwrap())
        .collect();
    cycles.sort_unstable();
    let mut want = vec![
        expected_answer(&mdes, a).0 as u64,
        expected_answer(&mdes, b).0 as u64,
    ];
    want.sort_unstable();
    assert_eq!(cycles, want);

    handle.shutdown();
    handle.join();
}

#[test]
fn garbage_frames_mid_pipeline_do_not_derail_later_replies() {
    let (handle, addr) = start(Machine::K5, "garbage", ServeConfig::default());
    let mdes = compile_machine(Machine::K5);

    // A parse error between two pipelined requests answers with id 0
    // and the surrounding requests still complete correctly.
    let mut conn = TestConn::open(&addr);
    conn.send_line(&v2_line(1, tiny(), None));
    conn.send_line("{\"verb\": \"schedule\", \"regions\": \"lots\"}");
    conn.send_line(&v2_line(2, tiny(), None));

    let mut ok = Vec::new();
    let mut errors = Vec::new();
    for _ in 0..3 {
        let reply = conn.read_reply().unwrap();
        if reply.ok {
            ok.push(reply);
        } else {
            errors.push(reply);
        }
    }
    assert_eq!(errors.len(), 1);
    assert_eq!(errors[0].id, 0, "unparseable frames answer with id 0");
    assert_eq!(errors[0].error_num(), Some(2));
    let mut ids: Vec<u64> = ok.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 2]);
    let (cycles, _) = expected_answer(&mdes, tiny());
    for reply in &ok {
        assert_eq!(reply.result_u64("cycles"), Some(cycles as u64));
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn requests_route_by_machine_and_unknown_machines_are_rejected() {
    let (handle, addr) = start_sharded(
        &[Machine::K5, Machine::Pentium],
        "route",
        ServeConfig::default(),
    );
    let k5_hash = content_hash(&image_bytes(Machine::K5));
    let pentium_hash = content_hash(&image_bytes(Machine::Pentium));
    let mut conn = TestConn::open(&addr);

    // Default (no machine field) routes to the boot shard.
    let reply = conn.round_trip(&v2_line(1, tiny(), None));
    assert_eq!(reply_hash(&reply), k5_hash);

    // Explicit routing per shard, with shard-correct answers.
    let reply = conn.round_trip(&v2_line(2, tiny(), Some("Pentium")));
    assert_eq!(reply_hash(&reply), pentium_hash);
    let (cycles, _) = expected_answer(&compile_machine(Machine::Pentium), tiny());
    assert_eq!(reply.result_u64("cycles"), Some(cycles as u64));
    let reply = conn.round_trip(&v2_line(3, tiny(), Some("K5")));
    assert_eq!(reply_hash(&reply), k5_hash);

    // Unknown machines answer a parse error naming the served shards.
    let reply = conn.round_trip(&v2_line(4, tiny(), Some("VAX")));
    assert!(!reply.ok);
    assert_eq!(reply.error_num(), Some(2));
    assert_eq!(reply.id, 4);
    let message = reply
        .body
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert!(
        message.contains("K5") && message.contains("Pentium"),
        "{message}"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn shedding_and_deadlines_stay_shard_local() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let (handle, addr) = start_sharded(&[Machine::K5, Machine::Pentium], "isolate", config);

    // Saturate the K5 shard: one huge job occupies its lone worker, one
    // more fills its depth-1 queue.
    let mut hog = TestConn::open(&addr);
    hog.send_line(&v2_line(1, big(), Some("K5")));
    wait_for_stats(&addr, |r| {
        r.get("shards")
            .and_then(|s| s.get("K5"))
            .and_then(|s| s.get("in_flight"))
            .and_then(Json::as_u64)
            == Some(1)
    });
    let mut filler = TestConn::open(&addr);
    filler.send_line(&v2_line(2, big(), Some("K5")));
    wait_for_stats(&addr, |r| {
        r.get("shards")
            .and_then(|s| s.get("K5"))
            .and_then(|s| s.get("queue_depth"))
            .and_then(Json::as_u64)
            == Some(1)
    });

    let mut conn = TestConn::open(&addr);

    // A third K5 request is shed with a retry hint…
    let reply = conn.round_trip(&v2_line(3, tiny(), Some("K5")));
    assert_eq!(reply.error_num(), Some(6), "{:?}", reply.body);
    assert!(reply.retry_after_ms().is_some());

    // …while the Pentium shard, same daemon, answers immediately.
    let reply = conn.round_trip(&v2_line(4, tiny(), Some("Pentium")));
    assert!(reply.ok, "{:?}", reply.body);

    // Shed accounting is per-shard: K5 shed, Pentium clean.
    let stats = conn.round_trip("{\"id\": 9, \"verb\": \"stats\"}");
    let shards = stats
        .body
        .get("result")
        .and_then(|r| r.get("shards"))
        .unwrap()
        .clone();
    let count = |shard: &str, key: &str| -> u64 {
        shards
            .get(shard)
            .and_then(|s| s.get(key))
            .and_then(Json::as_u64)
            .unwrap()
    };
    assert!(count("K5", "shed") >= 1);
    assert_eq!(count("Pentium", "shed"), 0);

    // Deadlines are enforced against the shard's own queue: a tiny
    // deadline on the still-saturated K5 shard expires while queued…
    let reply = filler.read_reply().unwrap(); // free K5's queue slot
    assert!(reply.ok || reply.error_num() == Some(5));
    let mut queued = TestConn::open(&addr);
    // Re-occupy the worker so the deadline job waits long enough.
    // (The hog's first job may still be running; either way the queue
    // admits exactly one more.)
    queued.send_line(
        &v2_line(5, tiny(), Some("K5")).replace("\"verb\"", "\"deadline_ms\": 1, \"verb\""),
    );
    let reply = queued.read_reply().unwrap();
    // Under a saturated shard this deadline can only be met if the
    // worker freed up first — accept either, but require that Pentium
    // never ticks deadline_exceeded.
    assert!(reply.ok || reply.error_num() == Some(5));
    let stats = conn.round_trip("{\"id\": 10, \"verb\": \"stats\"}");
    let pentium_deadlines = stats
        .body
        .get("result")
        .and_then(|r| r.get("shards"))
        .and_then(|s| s.get("Pentium"))
        .and_then(|s| s.get("deadline_exceeded"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(pentium_deadlines, 0);

    let _ = hog.read_reply();
    handle.shutdown();
    handle.join();
}

#[test]
fn reloads_swap_one_shard_and_leave_the_others_alone() {
    let (handle, addr) = start_sharded(
        &[Machine::K5, Machine::Pentium],
        "shard-reload",
        ServeConfig::default(),
    );
    let k5_hash = content_hash(&image_bytes(Machine::K5));
    let sparc = plant("sparc", &image_bytes(Machine::SuperSparc));
    let sparc_hash = content_hash(&image_bytes(Machine::SuperSparc));

    let mut conn = TestConn::open(&addr);
    let reply = conn.round_trip(&format!(
        "{{\"id\": 1, \"verb\": \"reload\", \"path\": {}, \"machine\": \"Pentium\"}}",
        Json::Str(sparc.display().to_string()).render()
    ));
    assert!(reply.ok, "{:?}", reply.body);
    assert_eq!(reply.result_u64("epoch"), Some(1));

    // Pentium now serves the SuperSPARC image at epoch 1; K5 is
    // untouched at epoch 0.
    let reply = conn.round_trip(&v2_line(2, tiny(), Some("Pentium")));
    assert_eq!(reply_hash(&reply), sparc_hash);
    assert_eq!(reply.result_u64("epoch"), Some(1));
    let reply = conn.round_trip(&v2_line(3, tiny(), Some("K5")));
    assert_eq!(reply_hash(&reply), k5_hash);
    assert_eq!(reply.result_u64("epoch"), Some(0));

    // Reload accounting is shard-local too.
    let stats = conn.round_trip("{\"id\": 4, \"verb\": \"stats\"}");
    let shards = stats
        .body
        .get("result")
        .and_then(|r| r.get("shards"))
        .unwrap()
        .clone();
    let reloads = |shard: &str| {
        shards
            .get(shard)
            .and_then(|s| s.get("reloads"))
            .and_then(Json::as_u64)
            .unwrap()
    };
    assert_eq!(reloads("Pentium"), 1);
    assert_eq!(reloads("K5"), 0);

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_file(sparc);
}

#[test]
fn pipelined_load_run_is_clean_across_shards_and_reloads() {
    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let (handle, addr) = start_sharded(&[Machine::K5, Machine::Pentium], "pipe-load", config);
    let sparc = plant("load-sparc", &image_bytes(Machine::SuperSparc));

    // The full v2 client: pipelined connections spraying both shards,
    // with a mid-run reload that retargets one shard only.  Every reply
    // is re-verified against the image hash it reports.
    let report = run_load(&LoadOptions {
        addr: addr.clone(),
        connections: 2,
        requests: 120,
        params: WorkParams {
            regions: 4,
            mean_ops: 6,
            seed: 0x9199,
            jobs: 1,
        },
        pipeline: 4,
        machines: vec!["K5".to_string(), "Pentium".to_string()],
        deadline_ms: None,
        reloads: vec![ReloadEvent {
            at: 60,
            path: sparc.display().to_string(),
            machine: Some("Pentium".to_string()),
            expect_rejection: false,
        }],
        known_sources: vec![
            image_bytes(Machine::K5),
            image_bytes(Machine::Pentium),
            image_bytes(Machine::SuperSparc),
        ],
        verify_responses: true,
        shutdown_when_done: false,
        max_retries: 16,
    })
    .expect("load run");

    assert!(report.is_clean(), "{:?}", report.errors);
    assert_eq!(report.answered, 120);
    assert_eq!(report.unverified, 0, "{:?}", report.errors);
    assert_eq!(report.reload_acks, 1);
    assert!(report.p99_us >= report.p50_us);

    // The K5 shard never reloaded; Pentium did exactly once.
    let mut conn = TestConn::open(&addr);
    let stats = conn.round_trip("{\"id\": 1, \"verb\": \"stats\"}");
    let shards = stats
        .body
        .get("result")
        .and_then(|r| r.get("shards"))
        .unwrap()
        .clone();
    let reloads = |shard: &str| {
        shards
            .get(shard)
            .and_then(|s| s.get("reloads"))
            .and_then(Json::as_u64)
            .unwrap()
    };
    assert_eq!(reloads("K5"), 0);
    assert_eq!(reloads("Pentium"), 1);

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_file(sparc);
}

#[test]
fn pipelining_beats_serial_on_parallel_hosts() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cpus < 4 {
        // On a 1–3 CPU host the daemon's workers and the client share
        // cores, so the comparison measures contention, not pipelining.
        eprintln!("skipping: {cpus} CPU(s) < 4");
        return;
    }
    let config = ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    };
    let (handle, addr) = start(Machine::K5, "speedup", config);
    let options = |pipeline: usize| LoadOptions {
        addr: addr.clone(),
        connections: 1,
        requests: 200,
        params: WorkParams {
            regions: 64,
            mean_ops: 8,
            seed: 0x5BEE,
            jobs: 1,
        },
        pipeline,
        machines: Vec::new(),
        deadline_ms: None,
        reloads: Vec::new(),
        known_sources: vec![image_bytes(Machine::K5)],
        verify_responses: true,
        shutdown_when_done: false,
        max_retries: 16,
    };

    // Warm both paths once, then time.
    run_load(&options(1)).expect("warmup");
    let serial_start = Instant::now();
    let serial = run_load(&options(1)).expect("serial run");
    let serial_elapsed = serial_start.elapsed();
    let piped_start = Instant::now();
    let piped = run_load(&options(8)).expect("pipelined run");
    let piped_elapsed = piped_start.elapsed();

    assert!(serial.is_clean(), "{:?}", serial.errors);
    assert!(piped.is_clean(), "{:?}", piped.errors);
    assert_eq!(piped.answered, 200);
    assert!(
        piped_elapsed < serial_elapsed,
        "pipeline 8 ({piped_elapsed:?}) must beat pipeline 1 ({serial_elapsed:?}) \
         with 4 workers on a {cpus}-CPU host"
    );

    handle.shutdown();
    handle.join();
}
