//! Backpressure: bounded admission, instant shedding with a retry hint,
//! and deadline cancellation of queued work.

mod common;

use common::{schedule_line, start, wait_for_stats, TestConn};
use mdes_machines::Machine;
use mdes_serve::{ServeConfig, WorkParams};
use mdes_telemetry::json::Json;

/// A request heavy enough to occupy the single worker for a few
/// seconds, so queue state is observable while it runs.
fn blocker_params() -> WorkParams {
    WorkParams {
        regions: 4096,
        mean_ops: 64,
        seed: 0xB10C,
        jobs: 1,
    }
}

fn stat(result: &Json, key: &str) -> u64 {
    result.get(key).and_then(Json::as_u64).unwrap_or(u64::MAX)
}

#[test]
fn full_queue_sheds_with_a_retry_hint() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let (handle, addr) = start(Machine::K5, "shed", config);

    // A occupies the lone worker.
    let mut a = TestConn::open(&addr);
    a.send_line(&schedule_line(1, blocker_params(), None));
    wait_for_stats(&addr, |r| {
        stat(r, "in_flight") == 1 && stat(r, "queue_depth") == 0
    });

    // B fills the one queue slot.
    let mut b = TestConn::open(&addr);
    b.send_line(&schedule_line(2, blocker_params(), None));
    wait_for_stats(&addr, |r| stat(r, "queue_depth") == 1);

    // C must be shed instantly, not queued or blocked.
    let mut c = TestConn::open(&addr);
    let reply = c.round_trip(&schedule_line(
        3,
        WorkParams {
            regions: 2,
            mean_ops: 4,
            seed: 7,
            jobs: 1,
        },
        None,
    ));
    assert!(!reply.ok);
    assert_eq!(reply.error_num(), Some(6));
    assert!(reply.retry_after_ms().unwrap() > 0);

    // Shedding C never disturbed the admitted requests.
    assert!(a.read_reply().unwrap().ok);
    assert!(b.read_reply().unwrap().ok);
    let reply = c.round_trip("{\"id\": 4, \"verb\": \"stats\"}");
    assert_eq!(reply.result_u64("shed"), Some(1));
    assert_eq!(reply.result_u64("answered"), Some(2));

    handle.shutdown();
    handle.join();
}

#[test]
fn expired_deadlines_cancel_queued_jobs_without_running_them() {
    let config = ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    };
    let (handle, addr) = start(Machine::K5, "deadline", config);

    let mut a = TestConn::open(&addr);
    a.send_line(&schedule_line(1, blocker_params(), None));
    wait_for_stats(&addr, |r| stat(r, "in_flight") == 1);

    // B's deadline (1ms) expires long before the blocker finishes, so
    // the worker cancels it at pop time.
    let mut b = TestConn::open(&addr);
    let params = WorkParams {
        regions: 2,
        mean_ops: 4,
        seed: 9,
        jobs: 1,
    };
    let reply = b.round_trip(&schedule_line(2, params, Some(1)));
    assert!(!reply.ok);
    assert_eq!(reply.error_num(), Some(5));

    // Without a deadline the same request succeeds once the worker
    // frees up.
    let reply = b.round_trip(&schedule_line(3, params, None));
    assert!(reply.ok, "{:?}", reply.body);

    assert!(a.read_reply().unwrap().ok);
    let reply = b.round_trip("{\"id\": 4, \"verb\": \"stats\"}");
    assert_eq!(reply.result_u64("deadline_exceeded"), Some(1));

    handle.shutdown();
    handle.join();
}

#[test]
fn generous_deadlines_do_not_reject_fast_requests() {
    let config = ServeConfig {
        default_deadline_ms: Some(10_000),
        ..ServeConfig::default()
    };
    let (handle, addr) = start(Machine::K5, "okdeadline", config);
    let mut conn = TestConn::open(&addr);
    for id in 0..8u64 {
        let params = WorkParams {
            regions: 2,
            mean_ops: 4,
            seed: id,
            jobs: 1,
        };
        let reply = conn.round_trip(&schedule_line(id, params, None));
        assert!(reply.ok, "{:?}", reply.body);
    }
    let reply = conn.round_trip("{\"id\": 99, \"verb\": \"stats\"}");
    assert_eq!(reply.result_u64("deadline_exceeded"), Some(0));
    handle.shutdown();
    handle.join();
}
