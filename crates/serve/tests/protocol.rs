//! Protocol conformance: every verb, every error-code path, and the
//! framing rules, against a live daemon.

mod common;

use common::{expected_answer, reply_hash, schedule_line, start, TestConn};
use mdes_machines::Machine;
use mdes_serve::{compile_machine, content_hash, ServeConfig, WorkParams};
use mdes_telemetry::json::Json;

#[test]
fn query_describes_the_boot_image() {
    let (handle, addr) = start(Machine::K5, "query", ServeConfig::default());
    let mut conn = TestConn::open(&addr);

    let reply = conn.round_trip("{\"id\": 1, \"verb\": \"query\"}");
    assert!(reply.ok);
    assert_eq!(reply.id, 1);
    assert_eq!(reply.result_u64("epoch"), Some(0));
    let mdes = compile_machine(Machine::K5);
    assert_eq!(
        reply.result_u64("classes"),
        Some(mdes.classes().len() as u64)
    );
    assert_eq!(
        reply_hash(&reply),
        content_hash(&mdes_core::lmdes::write(&mdes))
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn schedule_answers_match_the_local_oracle() {
    let (handle, addr) = start(Machine::Pa7100, "sched", ServeConfig::default());
    let mdes = compile_machine(Machine::Pa7100);
    let mut conn = TestConn::open(&addr);

    for seed in [1u64, 9, 1234] {
        let params = WorkParams {
            regions: 6,
            mean_ops: 7,
            seed,
            jobs: 1,
        };
        let reply = conn.round_trip(&schedule_line(seed, params, None));
        assert!(reply.ok, "seed {seed}: {:?}", reply.body);
        let (cycles, ops) = expected_answer(&mdes, params);
        assert_eq!(
            reply.result_u64("cycles"),
            Some(cycles as u64),
            "seed {seed}"
        );
        assert_eq!(reply.result_u64("ops"), Some(ops), "seed {seed}");
        assert_eq!(reply.result_u64("epoch"), Some(0));
    }

    // The verify verb re-checks the schedules server-side and still
    // reports the same quantities.
    let params = WorkParams {
        regions: 4,
        mean_ops: 6,
        seed: 5,
        jobs: 2,
    };
    let reply = conn.round_trip(
        "{\"id\": 50, \"verb\": \"verify\", \"regions\": 4, \"mean_ops\": 6, \
         \"seed\": 5, \"jobs\": 2}",
    );
    assert!(reply.ok);
    let (cycles, _) = expected_answer(&mdes, params);
    assert_eq!(reply.result_u64("cycles"), Some(cycles as u64));
    assert_eq!(
        reply.body.get("result").and_then(|r| r.get("verified")),
        Some(&Json::Bool(true))
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn malformed_frames_get_parse_errors_and_the_connection_survives() {
    let (handle, addr) = start(Machine::K5, "malformed", ServeConfig::default());
    let mut conn = TestConn::open(&addr);

    // Garbage JSON.
    let reply = conn.round_trip("this is not json");
    assert!(!reply.ok);
    assert_eq!(reply.error_num(), Some(2));

    // Valid JSON, missing verb (id recovered).
    let reply = conn.round_trip("{\"id\": 77}");
    assert!(!reply.ok);
    assert_eq!(reply.id, 77);
    assert_eq!(reply.error_num(), Some(2));

    // Unknown verb -> general.
    let reply = conn.round_trip("{\"id\": 78, \"verb\": \"warp\"}");
    assert_eq!(reply.error_num(), Some(1));

    // Out-of-range field.
    let reply = conn.round_trip("{\"id\": 79, \"verb\": \"schedule\", \"regions\": 100000}");
    assert_eq!(reply.error_num(), Some(2));

    // The same connection still serves good requests.
    let reply = conn.round_trip("{\"id\": 80, \"verb\": \"query\"}");
    assert!(reply.ok);

    // And the daemon counted the rejects.
    let reply = conn.round_trip("{\"id\": 81, \"verb\": \"stats\"}");
    assert!(reply.result_u64("parse_errors").unwrap() >= 3);

    handle.shutdown();
    handle.join();
}

#[test]
fn oversized_frames_close_only_the_offending_connection() {
    let (handle, addr) = start(Machine::K5, "oversize", ServeConfig::default());

    let mut bad = TestConn::open(&addr);
    // Stream > MAX_FRAME bytes with no newline.
    let blob = vec![b'x'; mdes_serve::MAX_FRAME + 4096];
    bad.send_raw(&blob);
    let reply = bad.read_reply().expect("error reply before close");
    assert!(!reply.ok);
    assert_eq!(reply.error_num(), Some(2));
    // After the error the daemon hangs up on this connection.
    assert!(bad.read_reply().is_err());

    // Other connections are untouched.
    let mut good = TestConn::open(&addr);
    let reply = good.round_trip("{\"id\": 1, \"verb\": \"query\"}");
    assert!(reply.ok);
    let reply = good.round_trip("{\"id\": 2, \"verb\": \"stats\"}");
    assert_eq!(reply.result_u64("oversized_frames"), Some(1));

    handle.shutdown();
    handle.join();
}

#[test]
fn poison_requires_chaos_mode() {
    let (handle, addr) = start(Machine::K5, "nopoison", ServeConfig::default());
    let mut conn = TestConn::open(&addr);
    let reply = conn.round_trip("{\"id\": 9, \"verb\": \"poison\"}");
    assert!(!reply.ok);
    assert_eq!(reply.error_num(), Some(1));
    handle.shutdown();
    handle.join();
}

#[test]
fn poison_panics_are_isolated_to_their_request() {
    let config = ServeConfig {
        chaos: true,
        workers: 1, // the lone worker must survive the panic
        ..ServeConfig::default()
    };
    let (handle, addr) = start(Machine::K5, "poison", config);
    let mdes = compile_machine(Machine::K5);
    let mut conn = TestConn::open(&addr);

    let reply = conn.round_trip("{\"id\": 1, \"verb\": \"poison\"}");
    assert!(!reply.ok);
    assert_eq!(reply.error_num(), Some(7));

    // The worker that just panicked still serves correct answers.
    let params = WorkParams {
        regions: 3,
        mean_ops: 5,
        seed: 2,
        jobs: 1,
    };
    let reply = conn.round_trip(&schedule_line(2, params, None));
    assert!(reply.ok);
    let (cycles, _) = expected_answer(&mdes, params);
    assert_eq!(reply.result_u64("cycles"), Some(cycles as u64));

    let reply = conn.round_trip("{\"id\": 3, \"verb\": \"stats\"}");
    assert_eq!(reply.result_u64("panics"), Some(1));
    assert_eq!(reply.result_u64("engine_worker_panics"), Some(0));

    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_verb_stops_the_daemon_with_nothing_in_flight() {
    let (handle, addr) = start(Machine::Pentium, "shutdown", ServeConfig::default());
    let mut conn = TestConn::open(&addr);
    for id in 0..5u64 {
        let params = WorkParams {
            regions: 2,
            mean_ops: 4,
            seed: id,
            jobs: 1,
        };
        assert!(conn.round_trip(&schedule_line(id, params, None)).ok);
    }
    let reply = conn.round_trip("{\"id\": 9, \"verb\": \"shutdown\"}");
    assert!(reply.ok);
    let stats = std::sync::Arc::clone(handle.stats());
    handle.join();
    assert_eq!(stats.in_flight(), 0);
    assert_eq!(stats.answered.load(std::sync::atomic::Ordering::Relaxed), 5);
}
