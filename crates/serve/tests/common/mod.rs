//! Shared harness for the daemon integration suites: unique sockets,
//! daemon boot helpers, a raw test connection, and the local expected-
//! answer oracle.

// Compiled once per test target; no single target uses every helper.
#![allow(dead_code)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mdes_core::CompiledMdes;
use mdes_machines::Machine;
use mdes_sched::{CheckStats, ListScheduler, SchedScratch};
use mdes_serve::proto::parse_reply;
use mdes_serve::{
    compile_machine, serve, BindAddr, ImageStore, Reply, ServeConfig, ServerHandle, WorkParams,
};
use mdes_telemetry::json::Json;
use mdes_workload::{generate_compiled_regions, RegionConfig};

static SOCKET_ID: AtomicU64 = AtomicU64::new(0);

/// A socket path no other test (or test process) is using.
pub fn unique_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mdes-serve-{tag}-{}-{}.sock",
        std::process::id(),
        SOCKET_ID.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Boots a daemon for `machine` on a fresh Unix socket.
pub fn start(machine: Machine, tag: &str, config: ServeConfig) -> (ServerHandle, BindAddr) {
    let store = Arc::new(ImageStore::new(
        compile_machine(machine),
        machine.name(),
        config.seed,
    ));
    let addr = BindAddr::Unix(unique_socket(tag));
    let handle = serve(addr.clone(), store, config).expect("daemon binds");
    (handle, addr)
}

/// Boots a multi-shard daemon, one shard (named after the machine) per
/// entry, on a fresh Unix socket.
pub fn start_sharded(
    machines: &[Machine],
    tag: &str,
    config: ServeConfig,
) -> (ServerHandle, BindAddr) {
    let stores = machines
        .iter()
        .map(|&m| {
            (
                m.name().to_string(),
                Arc::new(ImageStore::new(compile_machine(m), m.name(), config.seed)),
            )
        })
        .collect();
    let addr = BindAddr::Unix(unique_socket(tag));
    let handle = mdes_serve::serve_sharded(addr.clone(), stores, config).expect("daemon binds");
    (handle, addr)
}

/// A raw client connection speaking the line protocol, with a read
/// deadline so a hung daemon fails the test instead of wedging it.
pub struct TestConn {
    reader: BufReader<UnixStream>,
}

impl TestConn {
    pub fn open(addr: &BindAddr) -> TestConn {
        let BindAddr::Unix(path) = addr else {
            panic!("test daemons listen on unix sockets");
        };
        let stream = UnixStream::connect(path).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        TestConn {
            reader: BufReader::new(stream),
        }
    }

    /// Writes raw bytes without framing (for chaos payloads).
    pub fn send_raw(&mut self, bytes: &[u8]) {
        self.reader.get_mut().write_all(bytes).expect("write");
    }

    /// Like [`TestConn::send_raw`], but tolerates a dead peer (for
    /// writing into a connection the daemon has already dropped).
    pub fn send_raw_lossy(&mut self, bytes: &[u8]) {
        let _ = self.reader.get_mut().write_all(bytes);
    }

    /// Reads one response line.
    pub fn read_reply(&mut self) -> Result<Reply, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("connection closed".to_string()),
            Ok(_) => parse_reply(line.trim_end()),
            Err(e) => Err(format!("read: {e}")),
        }
    }

    /// One request line out, one reply back.
    pub fn round_trip(&mut self, line: &str) -> Reply {
        self.send_raw(line.as_bytes());
        self.send_raw(b"\n");
        self.read_reply().expect("reply")
    }

    /// Sends a request without waiting for the reply (to occupy a
    /// worker); pair with [`TestConn::read_reply`].
    pub fn send_line(&mut self, line: &str) {
        self.send_raw(line.as_bytes());
        self.send_raw(b"\n");
    }
}

/// A `schedule` request line.
pub fn schedule_line(id: u64, params: WorkParams, deadline_ms: Option<u64>) -> String {
    let deadline = match deadline_ms {
        Some(ms) => format!(", \"deadline_ms\": {ms}"),
        None => String::new(),
    };
    format!(
        "{{\"id\": {id}, \"verb\": \"schedule\", \"regions\": {}, \"mean_ops\": {}, \
         \"seed\": {}, \"jobs\": {}{deadline}}}",
        params.regions, params.mean_ops, params.seed, params.jobs
    )
}

/// The answer the daemon must give for `params` against `mdes`:
/// `(cycles, ops)`, derived with the serial scheduler (equal to any
/// worker count by the engine's determinism contract).
pub fn expected_answer(mdes: &CompiledMdes, params: WorkParams) -> (i64, u64) {
    let config = RegionConfig::new(params.regions)
        .with_mean_ops(params.mean_ops)
        .with_seed(params.seed);
    let workload = generate_compiled_regions(mdes, &config);
    let scheduler = ListScheduler::new(mdes);
    let mut scratch = SchedScratch::new();
    let mut stats = CheckStats::new();
    let cycles = workload
        .blocks
        .iter()
        .map(|block| {
            i64::from(
                scheduler
                    .schedule_reusing(block, &mut scratch, &mut stats)
                    .length,
            )
        })
        .sum();
    (cycles, workload.total_ops as u64)
}

/// The `u64` a reply's `result.hash` hex string decodes to.
pub fn reply_hash(reply: &Reply) -> u64 {
    let hex = reply
        .body
        .get("result")
        .and_then(|r| r.get("hash"))
        .and_then(Json::as_str)
        .expect("result.hash");
    u64::from_str_radix(hex, 16).expect("hash hex")
}

/// Polls the daemon's `stats` verb until `pred` holds (or panics after
/// ~5s) — for synchronizing on queue state without sleeps in the happy
/// path.
pub fn wait_for_stats(addr: &BindAddr, pred: impl Fn(&Json) -> bool) {
    let mut conn = TestConn::open(addr);
    for _ in 0..500 {
        let reply = conn.round_trip("{\"id\": 0, \"verb\": \"stats\"}");
        let result = reply.body.get("result").expect("stats result").clone();
        if pred(&result) {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("stats condition never became true");
}
