//! Bounded admission queue: the daemon's backpressure point.
//!
//! Connections push work; a fixed worker pool pops it.  The queue is the
//! only place requests wait, so bounding it bounds daemon memory and
//! gives a crisp shedding rule: a push against a full queue fails
//! *immediately* and the connection answers `overload` with a
//! `retry_after_ms` hint — the client retries, the daemon never stalls.
//!
//! Closing the queue stops admissions but lets workers drain what was
//! already accepted: every admitted request is answered even during
//! shutdown, which is what the "zero dropped requests" chaos invariant
//! leans on.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A bounded MPMC queue with explicit shed-on-full and drain-on-close
/// semantics.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item comes back to the caller.
    Full(T),
    /// The queue is closed (shutdown in progress).
    Closed(T),
}

impl<T> AdmissionQueue<T> {
    /// Creates a queue admitting at most `capacity` items (clamped to at
    /// least one).
    pub fn new(capacity: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admits `item`, or returns it to the caller when the queue is full
    /// or closed.  Never blocks.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= inner.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Takes the oldest admitted item, blocking while the queue is empty
    /// and open.  Returns `None` only once the queue is closed *and*
    /// drained — admitted work always reaches a worker.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Stops admissions and wakes every blocked popper.  Already-admitted
    /// items remain poppable.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Items currently waiting.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_is_fifo() {
        let queue = AdmissionQueue::new(4);
        for i in 0..4 {
            queue.push(i).unwrap();
        }
        assert_eq!(queue.depth(), 4);
        for i in 0..4 {
            assert_eq!(queue.pop(), Some(i));
        }
    }

    #[test]
    fn full_queue_sheds_immediately_and_returns_the_item() {
        let queue = AdmissionQueue::new(2);
        queue.push("a").unwrap();
        queue.push("b").unwrap();
        assert_eq!(queue.push("c"), Err(PushError::Full("c")));
        // Draining one slot re-opens admission.
        assert_eq!(queue.pop(), Some("a"));
        queue.push("c").unwrap();
    }

    #[test]
    fn close_rejects_new_work_but_drains_admitted_work() {
        let queue = AdmissionQueue::new(4);
        queue.push(1).unwrap();
        queue.push(2).unwrap();
        queue.close();
        assert_eq!(queue.push(3), Err(PushError::Closed(3)));
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), None);
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn blocked_poppers_wake_on_push_and_on_close() {
        let queue = Arc::new(AdmissionQueue::new(4));
        let popped: Vec<Option<u32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let queue = Arc::clone(&queue);
                    scope.spawn(move || queue.pop())
                })
                .collect();
            queue.push(7).unwrap();
            queue.push(8).unwrap();
            queue.close();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut got: Vec<_> = popped.into_iter().flatten().collect();
        got.sort_unstable();
        assert_eq!(got, vec![7, 8]);
    }
}
