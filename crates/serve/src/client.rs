//! The closed-loop client: load generator, correctness checker, and the
//! flag parser shared with `mdesc bench-serve`.
//!
//! The client is the other half of the chaos harness.  Every `schedule`
//! request it sends is derived from a per-request seed, and the daemon's
//! answer carries the content hash of the image that served it — so the
//! client can *recompute the expected answer locally* for any image it
//! knows the source of, and assert byte-for-byte agreement across hot
//! reloads, shedding, and injected faults.  A response served by epoch
//! N is checked against epoch N's description, no matter when the swap
//! happened relative to admission.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mdes_core::CompiledMdes;
use mdes_machines::Machine;
use mdes_sched::{CheckStats, ListScheduler, SchedScratch};
use mdes_telemetry::json::Json;
use mdes_telemetry::Telemetry;
use mdes_workload::{generate_compiled_regions, RegionConfig};

use crate::image::{compile_source, content_hash};
use crate::proto::{obj, parse_reply, Reply, WorkParams};
use crate::server::{BindAddr, Stream};

/// The workload flags shared by `mdesc bench-serve` (in-process) and
/// `mdesc serve-load` (over a socket): one parser, one contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchFlags {
    /// The bundled machine to schedule for.
    pub machine: Machine,
    /// Engine workers per batch/request.
    pub jobs: usize,
    /// Regions per batch/request.
    pub regions: usize,
    /// Mean operations per region.
    pub mean_ops: usize,
    /// Base workload seed.
    pub seed: u64,
}

impl Default for BenchFlags {
    fn default() -> BenchFlags {
        BenchFlags {
            machine: Machine::Pa7100,
            jobs: 1,
            regions: 512,
            mean_ops: 16,
            seed: 0xC1D7A5,
        }
    }
}

impl BenchFlags {
    /// Parses the shared flags out of `args`, returning the flags plus
    /// every argument the shared set does not claim (callers decide
    /// whether leftovers are their own flags or errors).
    pub fn parse(args: &[String]) -> Result<(BenchFlags, Vec<String>), String> {
        let mut flags = BenchFlags::default();
        let mut rest = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--machine" => {
                    let name = iter.next().ok_or("--machine requires a name")?;
                    flags.machine = Machine::all()
                        .into_iter()
                        .find(|m| m.name().eq_ignore_ascii_case(name))
                        .ok_or_else(|| {
                            format!("unknown machine `{name}` (PA7100, Pentium, SuperSPARC, K5)")
                        })?;
                }
                "--jobs" => flags.jobs = positive(iter.next(), "--jobs")?,
                "--regions" => flags.regions = positive(iter.next(), "--regions")?,
                "--mean-ops" => flags.mean_ops = positive(iter.next(), "--mean-ops")?,
                "--seed" => {
                    flags.seed = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--seed requires an integer")?;
                }
                other => rest.push(other.to_string()),
            }
        }
        Ok((flags, rest))
    }

    /// The per-request work parameters these flags describe.
    pub fn params(&self) -> WorkParams {
        WorkParams {
            regions: self.regions,
            mean_ops: self.mean_ops,
            seed: self.seed,
            jobs: self.jobs,
        }
    }
}

fn positive(value: Option<&String>, flag: &str) -> Result<usize, String> {
    value
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .ok_or_else(|| format!("{flag} requires a positive integer"))
}

/// A scripted mid-run reload.
#[derive(Clone, Debug)]
pub struct ReloadEvent {
    /// Fire when this request index is claimed.
    pub at: usize,
    /// Path the daemon is told to reload.
    pub path: String,
    /// Shard the reload targets (`machine` field), or `None` for the
    /// daemon's default shard.
    pub machine: Option<String>,
    /// Whether the reload is expected to be *rejected* (a corrupt image
    /// planted by the harness): an accepted reload then counts as a
    /// failure, and vice versa.
    pub expect_rejection: bool,
}

/// Closed-loop run configuration.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Daemon address.
    pub addr: BindAddr,
    /// Concurrent client connections.
    pub connections: usize,
    /// Total `schedule` requests across all connections.
    pub requests: usize,
    /// Per-request workload shape; request `i` uses `seed + i`.
    pub params: WorkParams,
    /// Requests in flight per connection.  `1` (the default) is the
    /// strict closed loop and sends v1-style id-less frames; `>1` opts
    /// into protocol-v2 pipelining with a windowed in-flight map.
    pub pipeline: usize,
    /// Shards to spray requests over (request `i` targets
    /// `machines[i % len]`).  Empty targets the daemon's default shard
    /// and omits the `machine` field entirely.
    pub machines: Vec<String>,
    /// Optional per-request deadline forwarded to the daemon.
    pub deadline_ms: Option<u64>,
    /// Scripted reloads, fired by whichever connection claims the
    /// trigger index.
    pub reloads: Vec<ReloadEvent>,
    /// Source bytes of every image the run may serve (boot + reload
    /// targets); responses hashing to one of these are re-derived and
    /// checked locally.
    pub known_sources: Vec<Vec<u8>>,
    /// Verify every answer against the local expectation (the chaos
    /// harness's correctness assertion).  Off for pure load generation.
    pub verify_responses: bool,
    /// Send `shutdown` after the run completes.
    pub shutdown_when_done: bool,
    /// How many times one request retries after being shed before the
    /// run counts it as dropped.
    pub max_retries: usize,
}

/// What the run observed.  `dropped`, `mismatches`, and
/// `reload_surprises` must be zero on a healthy daemon.
#[derive(Debug, Default)]
pub struct ClientReport {
    /// Requests answered with a success result.
    pub answered: u64,
    /// Requests answered with `deadline` (a valid answer under load).
    pub deadline_errors: u64,
    /// Requests answered with `panic` (isolated daemon-side).
    pub panic_errors: u64,
    /// Shed responses that were retried.
    pub shed_retries: u64,
    /// Requests never answered (timeouts, dead connections, retry
    /// budget exhausted).  Must be zero.
    pub dropped: u64,
    /// Answers that contradicted the local expectation.  Must be zero.
    pub mismatches: u64,
    /// Answers served by an image the client has no source for (cannot
    /// happen when `known_sources` covers the run).
    pub unverified: u64,
    /// Reloads acknowledged as promotions.
    pub reload_acks: u64,
    /// Reloads rejected as expected (corrupt images).
    pub reload_rejections: u64,
    /// Reloads whose outcome contradicted the script.  Must be zero.
    pub reload_surprises: u64,
    /// p50 request latency, microseconds.
    pub p50_us: u64,
    /// p99 request latency, microseconds.
    pub p99_us: u64,
    /// First few failure descriptions, for diagnostics.
    pub errors: Vec<String>,
}

impl ClientReport {
    /// The chaos invariant: every request answered, every answer right,
    /// every scripted reload behaving as scripted.
    pub fn is_clean(&self) -> bool {
        self.dropped == 0 && self.mismatches == 0 && self.reload_surprises == 0
    }

    /// Renders the report for the CLI.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("answered", Json::Num(self.answered as f64)),
            ("deadline_errors", Json::Num(self.deadline_errors as f64)),
            ("panic_errors", Json::Num(self.panic_errors as f64)),
            ("shed_retries", Json::Num(self.shed_retries as f64)),
            ("dropped", Json::Num(self.dropped as f64)),
            ("mismatches", Json::Num(self.mismatches as f64)),
            ("unverified", Json::Num(self.unverified as f64)),
            ("reload_acks", Json::Num(self.reload_acks as f64)),
            (
                "reload_rejections",
                Json::Num(self.reload_rejections as f64),
            ),
            ("reload_surprises", Json::Num(self.reload_surprises as f64)),
            ("p50_us", Json::Num(self.p50_us as f64)),
            ("p99_us", Json::Num(self.p99_us as f64)),
        ])
    }

    /// Folds the client-observed quantities into telemetry gauges.
    pub fn publish(&self, tel: &Telemetry) {
        tel.gauge_set("serve/p50_us", self.p50_us as f64);
        tel.gauge_set("serve/p99_us", self.p99_us as f64);
        tel.counter_add("serve/client_answered", self.answered);
        tel.counter_add("serve/client_shed_retries", self.shed_retries);
        tel.counter_add("serve/client_dropped", self.dropped);
        tel.counter_add("serve/client_mismatches", self.mismatches);
        tel.counter_add("serve/client_reload_acks", self.reload_acks);
    }
}

/// The local oracle: compiled descriptions keyed by content hash, plus
/// the serial scheduler that re-derives expected answers.
struct Verifier {
    images: HashMap<u64, Arc<CompiledMdes>>,
}

impl Verifier {
    fn new(sources: &[Vec<u8>], seed: u64) -> Result<Verifier, String> {
        let mut images = HashMap::new();
        for bytes in sources {
            let mdes = compile_source(bytes, seed)
                .map_err(|e| format!("known source rejected locally: {}", e.message()))?;
            // Key under the raw-bytes hash (what a reload of these bytes
            // reports) *and* the canonical-image hash (what a boot from
            // this description reports); they differ for HMDL sources.
            images.insert(content_hash(bytes), Arc::clone(&mdes));
            images.insert(
                content_hash(&mdes_core::lmdes::write(&mdes)),
                Arc::clone(&mdes),
            );
        }
        Ok(Verifier { images })
    }

    /// Recomputes `(cycles, ops)` for `params` against the image with
    /// `hash`, or `None` when the image is unknown.  Serial scheduling
    /// with scratch reuse — by the engine's determinism contract this
    /// equals what any worker count produces.
    fn expect(&self, hash: u64, params: WorkParams) -> Option<(i64, u64)> {
        let mdes = self.images.get(&hash)?;
        let config = RegionConfig::new(params.regions)
            .with_mean_ops(params.mean_ops)
            .with_seed(params.seed);
        let workload = generate_compiled_regions(mdes, &config);
        let scheduler = ListScheduler::new(mdes);
        let mut scratch = SchedScratch::new();
        let mut stats = CheckStats::new();
        let cycles = workload
            .blocks
            .iter()
            .map(|block| {
                i64::from(
                    scheduler
                        .schedule_reusing(block, &mut scratch, &mut stats)
                        .length,
                )
            })
            .sum();
        Some((cycles, workload.total_ops as u64))
    }
}

/// One connection with line framing and a read deadline.
struct Connection {
    reader: BufReader<Stream>,
}

impl Connection {
    fn open(addr: &BindAddr) -> Result<Connection, String> {
        let stream = Stream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| format!("set timeout: {e}"))?;
        Ok(Connection {
            reader: BufReader::new(stream),
        })
    }

    /// Sends one line without waiting for the reply (the pipelined
    /// path's fire half).
    fn send(&mut self, line: &str) -> Result<(), String> {
        let stream = self.reader.get_mut();
        stream
            .write_all(line.as_bytes())
            .and_then(|_| stream.write_all(b"\n"))
            .map_err(|e| format!("write: {e}"))
    }

    /// Reads one reply line (order is the daemon's choice under
    /// pipelining; correlate by `Reply::id`).
    fn read_reply(&mut self) -> Result<Reply, String> {
        let mut response = String::new();
        loop {
            match self.reader.read_line(&mut response) {
                Ok(0) => return Err("connection closed by daemon".to_string()),
                Ok(_) => return parse_reply(response.trim_end()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("read: {e}")),
            }
        }
    }

    /// Sends one line and reads one reply line (the serial path).
    fn round_trip(&mut self, line: &str) -> Result<Reply, String> {
        self.send(line)?;
        self.read_reply()
    }
}

fn machine_suffix(machine: Option<&str>) -> String {
    match machine {
        Some(name) => format!(", \"machine\": {}", Json::Str(name.to_string()).render()),
        None => String::new(),
    }
}

/// The shard request `index` targets under the run's spray policy.
fn machine_for(options: &LoadOptions, index: usize) -> Option<&str> {
    if options.machines.is_empty() {
        None
    } else {
        Some(options.machines[index % options.machines.len()].as_str())
    }
}

fn schedule_line(
    id: Option<u64>,
    params: WorkParams,
    deadline_ms: Option<u64>,
    verify: bool,
    machine: Option<&str>,
) -> String {
    let verb = if verify { "verify" } else { "schedule" };
    let id_field = match id {
        Some(id) => format!("\"id\": {id}, "),
        None => String::new(),
    };
    let deadline = match deadline_ms {
        Some(ms) => format!(", \"deadline_ms\": {ms}"),
        None => String::new(),
    };
    format!(
        "{{{id_field}\"verb\": \"{verb}\", \"regions\": {}, \"mean_ops\": {}, \
         \"seed\": {}, \"jobs\": {}{deadline}{}}}",
        params.regions,
        params.mean_ops,
        params.seed,
        params.jobs,
        machine_suffix(machine)
    )
}

fn reload_line(id: Option<u64>, event: &ReloadEvent) -> String {
    let id_field = match id {
        Some(id) => format!("\"id\": {id}, "),
        None => String::new(),
    };
    format!(
        "{{{id_field}\"verb\": \"reload\", \"path\": {}{}}}",
        Json::Str(event.path.clone()).render(),
        machine_suffix(event.machine.as_deref())
    )
}

struct RunState {
    next: AtomicUsize,
    /// Raw per-request latencies, merged from every connection's local
    /// vector before the percentile cut.  A shared bounded ring would
    /// evict early samples and under-weight slow connections whenever
    /// `--connections` skews the claim rate.
    samples: Mutex<Vec<u64>>,
    answered: AtomicU64,
    deadline_errors: AtomicU64,
    panic_errors: AtomicU64,
    shed_retries: AtomicU64,
    dropped: AtomicU64,
    mismatches: AtomicU64,
    unverified: AtomicU64,
    reload_acks: AtomicU64,
    reload_rejections: AtomicU64,
    reload_surprises: AtomicU64,
    errors: Mutex<Vec<String>>,
}

impl RunState {
    fn note_error(&self, message: String) {
        let mut errors = self.errors.lock().unwrap();
        if errors.len() < 16 {
            errors.push(message);
        }
    }

    fn merge_samples(&self, local: Vec<u64>) {
        self.samples.lock().unwrap().extend(local);
    }
}

/// Nearest-rank percentile over an already-sorted sample set, matching
/// `LatencyRecorder`'s cut so in-process and over-socket numbers use
/// the same definition.
fn percentile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    sorted[rank]
}

/// Runs the closed loop: `connections` threads drain a shared request
/// counter until `requests` have been attempted, firing scripted
/// reloads along the way, retrying shed requests, and (optionally)
/// checking every answer against the local oracle.
pub fn run_load(options: &LoadOptions) -> Result<ClientReport, String> {
    let verifier = if options.verify_responses {
        Some(Verifier::new(&options.known_sources, 0x5E17E)?)
    } else {
        None
    };
    let state = RunState {
        next: AtomicUsize::new(0),
        samples: Mutex::new(Vec::new()),
        answered: AtomicU64::new(0),
        deadline_errors: AtomicU64::new(0),
        panic_errors: AtomicU64::new(0),
        shed_retries: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        mismatches: AtomicU64::new(0),
        unverified: AtomicU64::new(0),
        reload_acks: AtomicU64::new(0),
        reload_rejections: AtomicU64::new(0),
        reload_surprises: AtomicU64::new(0),
        errors: Mutex::new(Vec::new()),
    };

    std::thread::scope(|scope| {
        for _ in 0..options.connections.max(1) {
            if options.pipeline > 1 {
                scope.spawn(|| pipelined_worker(options, &state, verifier.as_ref()));
            } else {
                scope.spawn(|| serial_worker(options, &state, verifier.as_ref()));
            }
        }
    });

    if options.shutdown_when_done {
        let mut conn = Connection::open(&options.addr)?;
        let reply = conn.round_trip("{\"id\": 0, \"verb\": \"shutdown\"}")?;
        if !reply.ok {
            return Err("daemon refused shutdown".to_string());
        }
    }

    let errors = std::mem::take(&mut *state.errors.lock().unwrap());
    let mut samples = std::mem::take(&mut *state.samples.lock().unwrap());
    samples.sort_unstable();
    Ok(ClientReport {
        answered: state.answered.load(Ordering::Relaxed),
        deadline_errors: state.deadline_errors.load(Ordering::Relaxed),
        panic_errors: state.panic_errors.load(Ordering::Relaxed),
        shed_retries: state.shed_retries.load(Ordering::Relaxed),
        dropped: state.dropped.load(Ordering::Relaxed),
        mismatches: state.mismatches.load(Ordering::Relaxed),
        unverified: state.unverified.load(Ordering::Relaxed),
        reload_acks: state.reload_acks.load(Ordering::Relaxed),
        reload_rejections: state.reload_rejections.load(Ordering::Relaxed),
        reload_surprises: state.reload_surprises.load(Ordering::Relaxed),
        p50_us: percentile_sorted(&samples, 0.50),
        p99_us: percentile_sorted(&samples, 0.99),
        errors,
    })
}

/// Counts every index this worker would still claim as dropped, so a
/// run against a dead daemon terminates instead of spinning.
fn drain_as_dropped(options: &LoadOptions, state: &RunState) {
    loop {
        let i = state.next.fetch_add(1, Ordering::Relaxed);
        if i >= options.requests {
            return;
        }
        state.dropped.fetch_add(1, Ordering::Relaxed);
    }
}

/// The strict closed loop: one request in flight, id-less v1 frames —
/// every chaos run with `--pipeline 1` exercises the daemon's serial
/// rendezvous path with the exact bytes a protocol-v1 client sends.
fn serial_worker(options: &LoadOptions, state: &RunState, verifier: Option<&Verifier>) {
    let mut samples = Vec::new();
    let mut conn = match Connection::open(&options.addr) {
        Ok(conn) => conn,
        Err(e) => {
            drain_as_dropped(options, state);
            state.note_error(e);
            return;
        }
    };
    loop {
        let index = state.next.fetch_add(1, Ordering::Relaxed);
        if index >= options.requests {
            break;
        }
        for event in &options.reloads {
            if event.at == index {
                fire_reload(&mut conn, event, state);
            }
        }
        run_one(&mut conn, options, state, verifier, index, &mut samples);
    }
    state.merge_samples(samples);
}

fn settle_reload(outcome: Result<bool, String>, event: &ReloadEvent, state: &RunState) {
    match outcome {
        Ok(rejected) => {
            if rejected == event.expect_rejection {
                if rejected {
                    state.reload_rejections.fetch_add(1, Ordering::Relaxed);
                } else {
                    state.reload_acks.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                state.reload_surprises.fetch_add(1, Ordering::Relaxed);
                state.note_error(format!(
                    "reload of `{}` expected rejection={} but got ok={}",
                    event.path, event.expect_rejection, !rejected
                ));
            }
        }
        Err(e) => {
            state.reload_surprises.fetch_add(1, Ordering::Relaxed);
            state.note_error(format!("reload of `{}` failed: {e}", event.path));
        }
    }
}

fn fire_reload(conn: &mut Connection, event: &ReloadEvent, state: &RunState) {
    let outcome = conn
        .round_trip(&reload_line(None, event))
        .map(|reply| !reply.ok);
    settle_reload(outcome, event, state);
}

fn run_one(
    conn: &mut Connection,
    options: &LoadOptions,
    state: &RunState,
    verifier: Option<&Verifier>,
    index: usize,
    samples: &mut Vec<u64>,
) {
    let params = WorkParams {
        seed: options.params.seed.wrapping_add(index as u64),
        ..options.params
    };
    let line = schedule_line(
        None,
        params,
        options.deadline_ms,
        false,
        machine_for(options, index),
    );
    let started = Instant::now();
    let mut retries = 0usize;
    loop {
        let reply = match conn.round_trip(&line) {
            Ok(reply) => reply,
            Err(e) => {
                state.dropped.fetch_add(1, Ordering::Relaxed);
                state.note_error(format!("request {index}: {e}"));
                // The connection may be dead; try to re-open for the
                // remaining requests this thread will claim.
                if let Ok(fresh) = Connection::open(&options.addr) {
                    *conn = fresh;
                }
                return;
            }
        };
        if reply.ok {
            samples.push(started.elapsed().as_micros() as u64);
            state.answered.fetch_add(1, Ordering::Relaxed);
            if let Some(verifier) = verifier {
                check_answer(&reply, params, verifier, state, index);
            }
            return;
        }
        match reply.error_num() {
            Some(6) => {
                // Shed: back off by the daemon's hint and retry.
                if retries >= options.max_retries {
                    state.dropped.fetch_add(1, Ordering::Relaxed);
                    state.note_error(format!("request {index}: retry budget exhausted"));
                    return;
                }
                retries += 1;
                state.shed_retries.fetch_add(1, Ordering::Relaxed);
                let backoff = reply.retry_after_ms().unwrap_or(10).min(1_000);
                std::thread::sleep(Duration::from_millis(backoff));
            }
            Some(5) => {
                state.deadline_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Some(7) => {
                state.panic_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
            other => {
                state.dropped.fetch_add(1, Ordering::Relaxed);
                state.note_error(format!("request {index}: unexpected error code {other:?}"));
                return;
            }
        }
    }
}

/// Ids for pipelined reload frames sit far above any request index so
/// the two id spaces can never collide.
const RELOAD_ID_BASE: u64 = 1 << 48;

/// A pipelined request awaiting its reply.
struct Outstanding {
    line: String,
    params: WorkParams,
    started: Instant,
    retries: usize,
    index: usize,
}

/// The protocol-v2 path: keep up to `pipeline` requests in flight per
/// connection, correlate replies by id (the daemon may complete them in
/// any order), and retry shed requests in place without collapsing the
/// window.
fn pipelined_worker(options: &LoadOptions, state: &RunState, verifier: Option<&Verifier>) {
    let depth = options.pipeline;
    let mut samples: Vec<u64> = Vec::new();
    let mut conn = match Connection::open(&options.addr) {
        Ok(conn) => conn,
        Err(e) => {
            drain_as_dropped(options, state);
            state.note_error(e);
            return;
        }
    };
    let mut inflight: HashMap<u64, Outstanding> = HashMap::new();
    let mut reloads: HashMap<u64, ReloadEvent> = HashMap::new();
    let mut reload_seq = 0u64;
    let mut exhausted = false;
    'run: loop {
        // Fill the window.
        while !exhausted && inflight.len() < depth {
            let index = state.next.fetch_add(1, Ordering::Relaxed);
            if index >= options.requests {
                exhausted = true;
                break;
            }
            for event in &options.reloads {
                if event.at == index {
                    let id = RELOAD_ID_BASE + reload_seq;
                    reload_seq += 1;
                    match conn.send(&reload_line(Some(id), event)) {
                        Ok(()) => {
                            reloads.insert(id, event.clone());
                        }
                        Err(e) => settle_reload(Err(e), event, state),
                    }
                }
            }
            let params = WorkParams {
                seed: options.params.seed.wrapping_add(index as u64),
                ..options.params
            };
            let line = schedule_line(
                Some(index as u64),
                params,
                options.deadline_ms,
                false,
                machine_for(options, index),
            );
            match conn.send(&line) {
                Ok(()) => {
                    inflight.insert(
                        index as u64,
                        Outstanding {
                            line,
                            params,
                            started: Instant::now(),
                            retries: 0,
                            index,
                        },
                    );
                }
                Err(e) => {
                    state.dropped.fetch_add(1, Ordering::Relaxed);
                    state.note_error(format!("request {index}: {e}"));
                    if !reconnect(&mut conn, options, state, &mut inflight, &mut reloads) {
                        break 'run;
                    }
                }
            }
        }
        if inflight.is_empty() && reloads.is_empty() {
            if exhausted {
                break;
            }
            continue;
        }
        let reply = match conn.read_reply() {
            Ok(reply) => reply,
            Err(e) => {
                state.note_error(format!("connection lost: {e}"));
                if reconnect(&mut conn, options, state, &mut inflight, &mut reloads) {
                    continue;
                }
                break;
            }
        };
        if let Some(out) = inflight.remove(&reply.id) {
            match settle_work(
                &reply,
                out,
                options,
                state,
                verifier,
                &mut conn,
                &mut samples,
            ) {
                Settled::Done => {}
                Settled::Resent(out) => {
                    inflight.insert(reply.id, out);
                }
                Settled::ConnectionBroken => {
                    if !reconnect(&mut conn, options, state, &mut inflight, &mut reloads) {
                        break;
                    }
                }
            }
        } else if let Some(event) = reloads.remove(&reply.id) {
            settle_reload(Ok(!reply.ok), &event, state);
        } else {
            // A duplicate or unsolicited id: the daemon never does
            // this, so surface it loudly rather than miscounting.
            state.note_error(format!("unexpected reply id {}", reply.id));
        }
    }
    state.merge_samples(samples);
}

/// What became of one correlated work reply.
enum Settled {
    /// Finished (answered, deadline, panic, or dropped) — forget it.
    Done,
    /// Shed and resent: put it back in the in-flight map under the
    /// same id (safe — the daemon answered the previous send).
    Resent(Outstanding),
    /// The resend hit a dead connection; the caller reconnects.
    ConnectionBroken,
}

/// Handles one correlated work reply; shed requests are resent in
/// place after the daemon's backoff hint.  Latency keeps accruing from
/// the first send — a shed-and-retried request is one request to the
/// percentile cut.
fn settle_work(
    reply: &Reply,
    mut out: Outstanding,
    options: &LoadOptions,
    state: &RunState,
    verifier: Option<&Verifier>,
    conn: &mut Connection,
    samples: &mut Vec<u64>,
) -> Settled {
    if reply.ok {
        samples.push(out.started.elapsed().as_micros() as u64);
        state.answered.fetch_add(1, Ordering::Relaxed);
        if let Some(verifier) = verifier {
            check_answer(reply, out.params, verifier, state, out.index);
        }
        return Settled::Done;
    }
    match reply.error_num() {
        Some(6) => {
            if out.retries >= options.max_retries {
                state.dropped.fetch_add(1, Ordering::Relaxed);
                state.note_error(format!("request {}: retry budget exhausted", out.index));
                return Settled::Done;
            }
            out.retries += 1;
            state.shed_retries.fetch_add(1, Ordering::Relaxed);
            let backoff = reply.retry_after_ms().unwrap_or(10).min(1_000);
            std::thread::sleep(Duration::from_millis(backoff));
            match conn.send(&out.line) {
                Ok(()) => Settled::Resent(out),
                Err(e) => {
                    state.dropped.fetch_add(1, Ordering::Relaxed);
                    state.note_error(format!("request {}: {e}", out.index));
                    Settled::ConnectionBroken
                }
            }
        }
        Some(5) => {
            state.deadline_errors.fetch_add(1, Ordering::Relaxed);
            Settled::Done
        }
        Some(7) => {
            state.panic_errors.fetch_add(1, Ordering::Relaxed);
            Settled::Done
        }
        other => {
            state.dropped.fetch_add(1, Ordering::Relaxed);
            state.note_error(format!(
                "request {}: unexpected error code {other:?}",
                out.index
            ));
            Settled::Done
        }
    }
}

/// Drops everything outstanding on a dead connection and re-opens it.
/// Returns `false` when the daemon is unreachable; the worker then
/// claims-and-drops the remaining indices so the run still terminates.
fn reconnect(
    conn: &mut Connection,
    options: &LoadOptions,
    state: &RunState,
    inflight: &mut HashMap<u64, Outstanding>,
    reloads: &mut HashMap<u64, ReloadEvent>,
) -> bool {
    state
        .dropped
        .fetch_add(inflight.len() as u64, Ordering::Relaxed);
    inflight.clear();
    for (_, event) in reloads.drain() {
        settle_reload(
            Err("connection lost awaiting reload ack".to_string()),
            &event,
            state,
        );
    }
    match Connection::open(&options.addr) {
        Ok(fresh) => {
            *conn = fresh;
            true
        }
        Err(e) => {
            state.note_error(e);
            drain_as_dropped(options, state);
            false
        }
    }
}

fn check_answer(
    reply: &Reply,
    params: WorkParams,
    verifier: &Verifier,
    state: &RunState,
    index: usize,
) {
    let hash = reply
        .body
        .get("result")
        .and_then(|r| r.get("hash"))
        .and_then(Json::as_str)
        .and_then(|h| u64::from_str_radix(h, 16).ok());
    let (cycles, ops) = match (reply.result_u64("cycles"), reply.result_u64("ops")) {
        (Some(cycles), Some(ops)) => (cycles as i64, ops),
        _ => {
            state.mismatches.fetch_add(1, Ordering::Relaxed);
            state.note_error(format!("request {index}: result missing cycles/ops"));
            return;
        }
    };
    let Some(hash) = hash else {
        state.mismatches.fetch_add(1, Ordering::Relaxed);
        state.note_error(format!("request {index}: result missing image hash"));
        return;
    };
    match verifier.expect(hash, params) {
        None => {
            state.unverified.fetch_add(1, Ordering::Relaxed);
        }
        Some((want_cycles, want_ops)) => {
            if cycles != want_cycles || ops != want_ops {
                state.mismatches.fetch_add(1, Ordering::Relaxed);
                state.note_error(format!(
                    "request {index}: image {hash:016x} answered {cycles} cycles / {ops} ops, \
                     expected {want_cycles} / {want_ops}"
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn shared_flags_parse_and_return_leftovers() {
        let (flags, rest) = BenchFlags::parse(&strings(&[
            "--machine",
            "k5",
            "--regions",
            "64",
            "--connect",
            "/tmp/x.sock",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(flags.machine, Machine::K5);
        assert_eq!(flags.regions, 64);
        assert_eq!(flags.seed, 9);
        assert_eq!(rest, strings(&["--connect", "/tmp/x.sock"]));
    }

    #[test]
    fn shared_flags_reject_bad_values() {
        assert!(BenchFlags::parse(&strings(&["--machine", "vax"])).is_err());
        assert!(BenchFlags::parse(&strings(&["--regions", "0"])).is_err());
        assert!(BenchFlags::parse(&strings(&["--jobs"])).is_err());
    }

    #[test]
    fn schedule_lines_round_trip_through_the_frame_parser() {
        let params = WorkParams {
            regions: 3,
            mean_ops: 5,
            seed: 77,
            jobs: 2,
        };
        let line = schedule_line(Some(12), params, Some(40), true, Some("k5"));
        let frame = crate::proto::parse_frame(&line).unwrap();
        assert_eq!(frame.id, Some(12));
        assert_eq!(frame.machine.as_deref(), Some("k5"));
        assert_eq!(
            frame.request,
            crate::proto::Request::Verify {
                params,
                deadline_ms: Some(40)
            }
        );
    }

    #[test]
    fn serial_schedule_lines_are_idless_v1_frames() {
        let params = WorkParams {
            regions: 3,
            mean_ops: 5,
            seed: 77,
            jobs: 2,
        };
        let line = schedule_line(None, params, None, false, None);
        assert!(
            !line.contains("\"id\""),
            "serial line carried an id: {line}"
        );
        assert!(!line.contains("\"machine\""));
        let frame = crate::proto::parse_frame(&line).unwrap();
        assert_eq!(frame.id, None, "id-less frames must stay v1-serial");
        assert_eq!(frame.reply_id(), 0);
    }

    #[test]
    fn reload_lines_carry_machine_and_optional_id() {
        let event = ReloadEvent {
            at: 3,
            path: "/tmp/x.lmdes".to_string(),
            machine: Some("pentium".to_string()),
            expect_rejection: false,
        };
        let frame = crate::proto::parse_frame(&reload_line(Some(RELOAD_ID_BASE), &event)).unwrap();
        assert_eq!(frame.id, Some(RELOAD_ID_BASE));
        assert_eq!(frame.machine.as_deref(), Some("pentium"));
        let frame = crate::proto::parse_frame(&reload_line(None, &event)).unwrap();
        assert_eq!(frame.id, None);
    }

    #[test]
    fn machine_spray_cycles_round_robin() {
        let mut options = LoadOptions {
            addr: BindAddr::Unix("/nonexistent".into()),
            connections: 1,
            requests: 10,
            params: WorkParams {
                regions: 1,
                mean_ops: 1,
                seed: 0,
                jobs: 1,
            },
            pipeline: 1,
            machines: vec!["a".to_string(), "b".to_string()],
            deadline_ms: None,
            reloads: Vec::new(),
            known_sources: Vec::new(),
            verify_responses: false,
            shutdown_when_done: false,
            max_retries: 0,
        };
        assert_eq!(machine_for(&options, 0), Some("a"));
        assert_eq!(machine_for(&options, 1), Some("b"));
        assert_eq!(machine_for(&options, 2), Some("a"));
        options.machines.clear();
        assert_eq!(machine_for(&options, 0), None);
    }

    /// The regression for the `--connections` skew bug: percentiles
    /// must come from the merged raw samples of every connection, not
    /// a shared bounded ring that evicts early (typically fast-path)
    /// samples.  The cut over merged vectors must equal the cut over
    /// their plain concatenation, however lopsided the per-connection
    /// counts are.
    #[test]
    fn percentiles_merge_skewed_connections_exactly() {
        // Connection A contributed 9000 fast samples, connection B only
        // 10 slow ones — B must not be able to drag p50, and A's early
        // samples must not be evicted from p99's view.
        let fast: Vec<u64> = (0..9000).map(|i| 100 + (i % 50)).collect();
        let slow: Vec<u64> = (0..10).map(|i| 90_000 + i * 1000).collect();

        let state = RunState {
            next: AtomicUsize::new(0),
            samples: Mutex::new(Vec::new()),
            answered: AtomicU64::new(0),
            deadline_errors: AtomicU64::new(0),
            panic_errors: AtomicU64::new(0),
            shed_retries: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            mismatches: AtomicU64::new(0),
            unverified: AtomicU64::new(0),
            reload_acks: AtomicU64::new(0),
            reload_rejections: AtomicU64::new(0),
            reload_surprises: AtomicU64::new(0),
            errors: Mutex::new(Vec::new()),
        };
        state.merge_samples(fast.clone());
        state.merge_samples(slow.clone());

        let mut merged = std::mem::take(&mut *state.samples.lock().unwrap());
        merged.sort_unstable();
        let mut concat = [fast, slow].concat();
        concat.sort_unstable();
        assert_eq!(merged, concat);

        let n = merged.len();
        let p50 = percentile_sorted(&merged, 0.50);
        let p99 = percentile_sorted(&merged, 0.99);
        // Nearest-rank by hand: rank = ceil(q*n) - 1.
        assert_eq!(p50, concat[(0.50f64 * n as f64).ceil() as usize - 1]);
        assert_eq!(p99, concat[(0.99f64 * n as f64).ceil() as usize - 1]);
        // The 10 slow outliers are ~0.1% of the run: p50 stays on the
        // fast path and p99 still reflects the merged distribution.
        assert!(p50 < 200, "p50 dragged by outliers: {p50}");
        assert!(p99 < 90_000, "p99 must sit below the 0.1% outlier band");
    }

    #[test]
    fn percentile_sorted_matches_latency_recorder_semantics() {
        use mdes_telemetry::LatencyRecorder;
        let samples: Vec<u64> = (1..=137).map(|i| i * 3).collect();
        let recorder = LatencyRecorder::new(1024);
        for &s in &samples {
            recorder.record(s);
        }
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                Some(percentile_sorted(&samples, q)),
                recorder.percentile(q),
                "divergence at q={q}"
            );
        }
        assert_eq!(percentile_sorted(&[], 0.5), 0);
    }
}
