//! The closed-loop client: load generator, correctness checker, and the
//! flag parser shared with `mdesc bench-serve`.
//!
//! The client is the other half of the chaos harness.  Every `schedule`
//! request it sends is derived from a per-request seed, and the daemon's
//! answer carries the content hash of the image that served it — so the
//! client can *recompute the expected answer locally* for any image it
//! knows the source of, and assert byte-for-byte agreement across hot
//! reloads, shedding, and injected faults.  A response served by epoch
//! N is checked against epoch N's description, no matter when the swap
//! happened relative to admission.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mdes_core::CompiledMdes;
use mdes_machines::Machine;
use mdes_sched::{CheckStats, ListScheduler, SchedScratch};
use mdes_telemetry::json::Json;
use mdes_telemetry::{LatencyRecorder, Telemetry};
use mdes_workload::{generate_compiled_regions, RegionConfig};

use crate::image::{compile_source, content_hash};
use crate::proto::{obj, parse_reply, Reply, WorkParams};
use crate::server::{BindAddr, Stream};

/// The workload flags shared by `mdesc bench-serve` (in-process) and
/// `mdesc serve-load` (over a socket): one parser, one contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchFlags {
    /// The bundled machine to schedule for.
    pub machine: Machine,
    /// Engine workers per batch/request.
    pub jobs: usize,
    /// Regions per batch/request.
    pub regions: usize,
    /// Mean operations per region.
    pub mean_ops: usize,
    /// Base workload seed.
    pub seed: u64,
}

impl Default for BenchFlags {
    fn default() -> BenchFlags {
        BenchFlags {
            machine: Machine::Pa7100,
            jobs: 1,
            regions: 512,
            mean_ops: 16,
            seed: 0xC1D7A5,
        }
    }
}

impl BenchFlags {
    /// Parses the shared flags out of `args`, returning the flags plus
    /// every argument the shared set does not claim (callers decide
    /// whether leftovers are their own flags or errors).
    pub fn parse(args: &[String]) -> Result<(BenchFlags, Vec<String>), String> {
        let mut flags = BenchFlags::default();
        let mut rest = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--machine" => {
                    let name = iter.next().ok_or("--machine requires a name")?;
                    flags.machine = Machine::all()
                        .into_iter()
                        .find(|m| m.name().eq_ignore_ascii_case(name))
                        .ok_or_else(|| {
                            format!("unknown machine `{name}` (PA7100, Pentium, SuperSPARC, K5)")
                        })?;
                }
                "--jobs" => flags.jobs = positive(iter.next(), "--jobs")?,
                "--regions" => flags.regions = positive(iter.next(), "--regions")?,
                "--mean-ops" => flags.mean_ops = positive(iter.next(), "--mean-ops")?,
                "--seed" => {
                    flags.seed = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--seed requires an integer")?;
                }
                other => rest.push(other.to_string()),
            }
        }
        Ok((flags, rest))
    }

    /// The per-request work parameters these flags describe.
    pub fn params(&self) -> WorkParams {
        WorkParams {
            regions: self.regions,
            mean_ops: self.mean_ops,
            seed: self.seed,
            jobs: self.jobs,
        }
    }
}

fn positive(value: Option<&String>, flag: &str) -> Result<usize, String> {
    value
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .ok_or_else(|| format!("{flag} requires a positive integer"))
}

/// A scripted mid-run reload.
#[derive(Clone, Debug)]
pub struct ReloadEvent {
    /// Fire when this request index is claimed.
    pub at: usize,
    /// Path the daemon is told to reload.
    pub path: String,
    /// Whether the reload is expected to be *rejected* (a corrupt image
    /// planted by the harness): an accepted reload then counts as a
    /// failure, and vice versa.
    pub expect_rejection: bool,
}

/// Closed-loop run configuration.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Daemon address.
    pub addr: BindAddr,
    /// Concurrent client connections.
    pub connections: usize,
    /// Total `schedule` requests across all connections.
    pub requests: usize,
    /// Per-request workload shape; request `i` uses `seed + i`.
    pub params: WorkParams,
    /// Optional per-request deadline forwarded to the daemon.
    pub deadline_ms: Option<u64>,
    /// Scripted reloads, fired by whichever connection claims the
    /// trigger index.
    pub reloads: Vec<ReloadEvent>,
    /// Source bytes of every image the run may serve (boot + reload
    /// targets); responses hashing to one of these are re-derived and
    /// checked locally.
    pub known_sources: Vec<Vec<u8>>,
    /// Verify every answer against the local expectation (the chaos
    /// harness's correctness assertion).  Off for pure load generation.
    pub verify_responses: bool,
    /// Send `shutdown` after the run completes.
    pub shutdown_when_done: bool,
    /// How many times one request retries after being shed before the
    /// run counts it as dropped.
    pub max_retries: usize,
}

/// What the run observed.  `dropped`, `mismatches`, and
/// `reload_surprises` must be zero on a healthy daemon.
#[derive(Debug, Default)]
pub struct ClientReport {
    /// Requests answered with a success result.
    pub answered: u64,
    /// Requests answered with `deadline` (a valid answer under load).
    pub deadline_errors: u64,
    /// Requests answered with `panic` (isolated daemon-side).
    pub panic_errors: u64,
    /// Shed responses that were retried.
    pub shed_retries: u64,
    /// Requests never answered (timeouts, dead connections, retry
    /// budget exhausted).  Must be zero.
    pub dropped: u64,
    /// Answers that contradicted the local expectation.  Must be zero.
    pub mismatches: u64,
    /// Answers served by an image the client has no source for (cannot
    /// happen when `known_sources` covers the run).
    pub unverified: u64,
    /// Reloads acknowledged as promotions.
    pub reload_acks: u64,
    /// Reloads rejected as expected (corrupt images).
    pub reload_rejections: u64,
    /// Reloads whose outcome contradicted the script.  Must be zero.
    pub reload_surprises: u64,
    /// p50 request latency, microseconds.
    pub p50_us: u64,
    /// p99 request latency, microseconds.
    pub p99_us: u64,
    /// First few failure descriptions, for diagnostics.
    pub errors: Vec<String>,
}

impl ClientReport {
    /// The chaos invariant: every request answered, every answer right,
    /// every scripted reload behaving as scripted.
    pub fn is_clean(&self) -> bool {
        self.dropped == 0 && self.mismatches == 0 && self.reload_surprises == 0
    }

    /// Renders the report for the CLI.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("answered", Json::Num(self.answered as f64)),
            ("deadline_errors", Json::Num(self.deadline_errors as f64)),
            ("panic_errors", Json::Num(self.panic_errors as f64)),
            ("shed_retries", Json::Num(self.shed_retries as f64)),
            ("dropped", Json::Num(self.dropped as f64)),
            ("mismatches", Json::Num(self.mismatches as f64)),
            ("unverified", Json::Num(self.unverified as f64)),
            ("reload_acks", Json::Num(self.reload_acks as f64)),
            (
                "reload_rejections",
                Json::Num(self.reload_rejections as f64),
            ),
            ("reload_surprises", Json::Num(self.reload_surprises as f64)),
            ("p50_us", Json::Num(self.p50_us as f64)),
            ("p99_us", Json::Num(self.p99_us as f64)),
        ])
    }

    /// Folds the client-observed quantities into telemetry gauges.
    pub fn publish(&self, tel: &Telemetry) {
        tel.gauge_set("serve/p50_us", self.p50_us as f64);
        tel.gauge_set("serve/p99_us", self.p99_us as f64);
        tel.counter_add("serve/client_answered", self.answered);
        tel.counter_add("serve/client_shed_retries", self.shed_retries);
        tel.counter_add("serve/client_dropped", self.dropped);
        tel.counter_add("serve/client_mismatches", self.mismatches);
        tel.counter_add("serve/client_reload_acks", self.reload_acks);
    }
}

/// The local oracle: compiled descriptions keyed by content hash, plus
/// the serial scheduler that re-derives expected answers.
struct Verifier {
    images: HashMap<u64, Arc<CompiledMdes>>,
}

impl Verifier {
    fn new(sources: &[Vec<u8>], seed: u64) -> Result<Verifier, String> {
        let mut images = HashMap::new();
        for bytes in sources {
            let mdes = compile_source(bytes, seed)
                .map_err(|e| format!("known source rejected locally: {}", e.message()))?;
            // Key under the raw-bytes hash (what a reload of these bytes
            // reports) *and* the canonical-image hash (what a boot from
            // this description reports); they differ for HMDL sources.
            images.insert(content_hash(bytes), Arc::clone(&mdes));
            images.insert(
                content_hash(&mdes_core::lmdes::write(&mdes)),
                Arc::clone(&mdes),
            );
        }
        Ok(Verifier { images })
    }

    /// Recomputes `(cycles, ops)` for `params` against the image with
    /// `hash`, or `None` when the image is unknown.  Serial scheduling
    /// with scratch reuse — by the engine's determinism contract this
    /// equals what any worker count produces.
    fn expect(&self, hash: u64, params: WorkParams) -> Option<(i64, u64)> {
        let mdes = self.images.get(&hash)?;
        let config = RegionConfig::new(params.regions)
            .with_mean_ops(params.mean_ops)
            .with_seed(params.seed);
        let workload = generate_compiled_regions(mdes, &config);
        let scheduler = ListScheduler::new(mdes);
        let mut scratch = SchedScratch::new();
        let mut stats = CheckStats::new();
        let cycles = workload
            .blocks
            .iter()
            .map(|block| {
                i64::from(
                    scheduler
                        .schedule_reusing(block, &mut scratch, &mut stats)
                        .length,
                )
            })
            .sum();
        Some((cycles, workload.total_ops as u64))
    }
}

/// One connection with line framing and a read deadline.
struct Connection {
    reader: BufReader<Stream>,
}

impl Connection {
    fn open(addr: &BindAddr) -> Result<Connection, String> {
        let stream = Stream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| format!("set timeout: {e}"))?;
        Ok(Connection {
            reader: BufReader::new(stream),
        })
    }

    /// Sends one line and reads one reply line.
    fn round_trip(&mut self, line: &str) -> Result<Reply, String> {
        let stream = self.reader.get_mut();
        stream
            .write_all(line.as_bytes())
            .and_then(|_| stream.write_all(b"\n"))
            .map_err(|e| format!("write: {e}"))?;
        let mut response = String::new();
        loop {
            match self.reader.read_line(&mut response) {
                Ok(0) => return Err("connection closed by daemon".to_string()),
                Ok(_) => return parse_reply(response.trim_end()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("read: {e}")),
            }
        }
    }
}

fn schedule_line(id: u64, params: WorkParams, deadline_ms: Option<u64>, verify: bool) -> String {
    let verb = if verify { "verify" } else { "schedule" };
    let deadline = match deadline_ms {
        Some(ms) => format!(", \"deadline_ms\": {ms}"),
        None => String::new(),
    };
    format!(
        "{{\"id\": {id}, \"verb\": \"{verb}\", \"regions\": {}, \"mean_ops\": {}, \
         \"seed\": {}, \"jobs\": {}{deadline}}}",
        params.regions, params.mean_ops, params.seed, params.jobs
    )
}

struct RunState {
    next: AtomicUsize,
    latency: LatencyRecorder,
    answered: AtomicU64,
    deadline_errors: AtomicU64,
    panic_errors: AtomicU64,
    shed_retries: AtomicU64,
    dropped: AtomicU64,
    mismatches: AtomicU64,
    unverified: AtomicU64,
    reload_acks: AtomicU64,
    reload_rejections: AtomicU64,
    reload_surprises: AtomicU64,
    errors: Mutex<Vec<String>>,
}

impl RunState {
    fn note_error(&self, message: String) {
        let mut errors = self.errors.lock().unwrap();
        if errors.len() < 16 {
            errors.push(message);
        }
    }
}

/// Runs the closed loop: `connections` threads drain a shared request
/// counter until `requests` have been attempted, firing scripted
/// reloads along the way, retrying shed requests, and (optionally)
/// checking every answer against the local oracle.
pub fn run_load(options: &LoadOptions) -> Result<ClientReport, String> {
    let verifier = if options.verify_responses {
        Some(Verifier::new(&options.known_sources, 0x5E17E)?)
    } else {
        None
    };
    let state = RunState {
        next: AtomicUsize::new(0),
        latency: LatencyRecorder::new(8192),
        answered: AtomicU64::new(0),
        deadline_errors: AtomicU64::new(0),
        panic_errors: AtomicU64::new(0),
        shed_retries: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        mismatches: AtomicU64::new(0),
        unverified: AtomicU64::new(0),
        reload_acks: AtomicU64::new(0),
        reload_rejections: AtomicU64::new(0),
        reload_surprises: AtomicU64::new(0),
        errors: Mutex::new(Vec::new()),
    };

    std::thread::scope(|scope| {
        for _ in 0..options.connections.max(1) {
            scope.spawn(|| connection_worker(options, &state, verifier.as_ref()));
        }
    });

    if options.shutdown_when_done {
        let mut conn = Connection::open(&options.addr)?;
        let reply = conn.round_trip("{\"id\": 0, \"verb\": \"shutdown\"}")?;
        if !reply.ok {
            return Err("daemon refused shutdown".to_string());
        }
    }

    let errors = std::mem::take(&mut *state.errors.lock().unwrap());
    Ok(ClientReport {
        answered: state.answered.load(Ordering::Relaxed),
        deadline_errors: state.deadline_errors.load(Ordering::Relaxed),
        panic_errors: state.panic_errors.load(Ordering::Relaxed),
        shed_retries: state.shed_retries.load(Ordering::Relaxed),
        dropped: state.dropped.load(Ordering::Relaxed),
        mismatches: state.mismatches.load(Ordering::Relaxed),
        unverified: state.unverified.load(Ordering::Relaxed),
        reload_acks: state.reload_acks.load(Ordering::Relaxed),
        reload_rejections: state.reload_rejections.load(Ordering::Relaxed),
        reload_surprises: state.reload_surprises.load(Ordering::Relaxed),
        p50_us: state.latency.percentile(0.50).unwrap_or(0),
        p99_us: state.latency.percentile(0.99).unwrap_or(0),
        errors,
    })
}

fn connection_worker(options: &LoadOptions, state: &RunState, verifier: Option<&Verifier>) {
    let mut conn = match Connection::open(&options.addr) {
        Ok(conn) => conn,
        Err(e) => {
            // Count everything this thread would have claimed as dropped.
            loop {
                let i = state.next.fetch_add(1, Ordering::Relaxed);
                if i >= options.requests {
                    break;
                }
                state.dropped.fetch_add(1, Ordering::Relaxed);
            }
            state.note_error(e);
            return;
        }
    };
    loop {
        let index = state.next.fetch_add(1, Ordering::Relaxed);
        if index >= options.requests {
            return;
        }
        for event in &options.reloads {
            if event.at == index {
                fire_reload(&mut conn, event, state);
            }
        }
        run_one(&mut conn, options, state, verifier, index);
    }
}

fn fire_reload(conn: &mut Connection, event: &ReloadEvent, state: &RunState) {
    let line = format!(
        "{{\"id\": 900000, \"verb\": \"reload\", \"path\": {}}}",
        Json::Str(event.path.clone()).render()
    );
    match conn.round_trip(&line) {
        Ok(reply) => {
            let rejected = !reply.ok;
            if rejected == event.expect_rejection {
                if rejected {
                    state.reload_rejections.fetch_add(1, Ordering::Relaxed);
                } else {
                    state.reload_acks.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                state.reload_surprises.fetch_add(1, Ordering::Relaxed);
                state.note_error(format!(
                    "reload of `{}` expected rejection={} but got ok={}",
                    event.path, event.expect_rejection, reply.ok
                ));
            }
        }
        Err(e) => {
            state.reload_surprises.fetch_add(1, Ordering::Relaxed);
            state.note_error(format!("reload of `{}` failed: {e}", event.path));
        }
    }
}

fn run_one(
    conn: &mut Connection,
    options: &LoadOptions,
    state: &RunState,
    verifier: Option<&Verifier>,
    index: usize,
) {
    let params = WorkParams {
        seed: options.params.seed.wrapping_add(index as u64),
        ..options.params
    };
    let line = schedule_line(index as u64, params, options.deadline_ms, false);
    let started = Instant::now();
    let mut retries = 0usize;
    loop {
        let reply = match conn.round_trip(&line) {
            Ok(reply) => reply,
            Err(e) => {
                state.dropped.fetch_add(1, Ordering::Relaxed);
                state.note_error(format!("request {index}: {e}"));
                // The connection may be dead; try to re-open for the
                // remaining requests this thread will claim.
                if let Ok(fresh) = Connection::open(&options.addr) {
                    *conn = fresh;
                }
                return;
            }
        };
        if reply.ok {
            state.latency.record(started.elapsed().as_micros() as u64);
            state.answered.fetch_add(1, Ordering::Relaxed);
            if let Some(verifier) = verifier {
                check_answer(&reply, params, verifier, state, index);
            }
            return;
        }
        match reply.error_num() {
            Some(6) => {
                // Shed: back off by the daemon's hint and retry.
                if retries >= options.max_retries {
                    state.dropped.fetch_add(1, Ordering::Relaxed);
                    state.note_error(format!("request {index}: retry budget exhausted"));
                    return;
                }
                retries += 1;
                state.shed_retries.fetch_add(1, Ordering::Relaxed);
                let backoff = reply.retry_after_ms().unwrap_or(10).min(1_000);
                std::thread::sleep(Duration::from_millis(backoff));
            }
            Some(5) => {
                state.deadline_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Some(7) => {
                state.panic_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
            other => {
                state.dropped.fetch_add(1, Ordering::Relaxed);
                state.note_error(format!("request {index}: unexpected error code {other:?}"));
                return;
            }
        }
    }
}

fn check_answer(
    reply: &Reply,
    params: WorkParams,
    verifier: &Verifier,
    state: &RunState,
    index: usize,
) {
    let hash = reply
        .body
        .get("result")
        .and_then(|r| r.get("hash"))
        .and_then(Json::as_str)
        .and_then(|h| u64::from_str_radix(h, 16).ok());
    let (cycles, ops) = match (reply.result_u64("cycles"), reply.result_u64("ops")) {
        (Some(cycles), Some(ops)) => (cycles as i64, ops),
        _ => {
            state.mismatches.fetch_add(1, Ordering::Relaxed);
            state.note_error(format!("request {index}: result missing cycles/ops"));
            return;
        }
    };
    let Some(hash) = hash else {
        state.mismatches.fetch_add(1, Ordering::Relaxed);
        state.note_error(format!("request {index}: result missing image hash"));
        return;
    };
    match verifier.expect(hash, params) {
        None => {
            state.unverified.fetch_add(1, Ordering::Relaxed);
        }
        Some((want_cycles, want_ops)) => {
            if cycles != want_cycles || ops != want_ops {
                state.mismatches.fetch_add(1, Ordering::Relaxed);
                state.note_error(format!(
                    "request {index}: image {hash:016x} answered {cycles} cycles / {ops} ops, \
                     expected {want_cycles} / {want_ops}"
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn shared_flags_parse_and_return_leftovers() {
        let (flags, rest) = BenchFlags::parse(&strings(&[
            "--machine",
            "k5",
            "--regions",
            "64",
            "--connect",
            "/tmp/x.sock",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(flags.machine, Machine::K5);
        assert_eq!(flags.regions, 64);
        assert_eq!(flags.seed, 9);
        assert_eq!(rest, strings(&["--connect", "/tmp/x.sock"]));
    }

    #[test]
    fn shared_flags_reject_bad_values() {
        assert!(BenchFlags::parse(&strings(&["--machine", "vax"])).is_err());
        assert!(BenchFlags::parse(&strings(&["--regions", "0"])).is_err());
        assert!(BenchFlags::parse(&strings(&["--jobs"])).is_err());
    }

    #[test]
    fn schedule_lines_round_trip_through_the_frame_parser() {
        let params = WorkParams {
            regions: 3,
            mean_ops: 5,
            seed: 77,
            jobs: 2,
        };
        let line = schedule_line(12, params, Some(40), true);
        let frame = crate::proto::parse_frame(&line).unwrap();
        assert_eq!(frame.id, 12);
        assert_eq!(
            frame.request,
            crate::proto::Request::Verify {
                params,
                deadline_ms: Some(40)
            }
        );
    }
}
