//! The daemon: listeners, connection handling, the worker pool, and the
//! serving statistics.
//!
//! ## Threading model
//!
//! One accept thread, a reader *and* a writer thread per connection, and
//! per shard a fixed pool of request workers draining that shard's
//! [`AdmissionQueue`].  The reader frames requests, answers the cheap
//! verbs (`query`, `stats`, `reload`, `shutdown`) through the writer,
//! and for work verbs (`schedule`, `verify`, `poison`) captures the
//! target shard's serving image and pushes a job.  The writer serializes
//! reply lines onto the socket in completion order:
//!
//! * A request carrying an `id` is *pipelined* — the reader admits it
//!   and immediately reads the next frame; the worker hands the finished
//!   reply straight to the writer, so replies may leave out of admission
//!   order and the client correlates them by `id`.
//! * A request without an `id` keeps the v1 contract: the reader blocks
//!   on the worker's rendezvous reply and forwards it before reading the
//!   next frame — strict serial FIFO, byte-identical to v1.
//!
//! ## Sharding
//!
//! A daemon boots one [`Shard`] per served machine, each with its own
//! epoch'd [`ImageStore`], admission queue, worker pool, and counters.
//! Requests route by the optional `machine` field (default: the boot
//! shard), so overload, deadlines, and reloads on one shard cannot
//! disturb another — there is no shared queue to poison and no shared
//! swap point to contend.
//!
//! ## Robustness contract
//!
//! * The serving image for a request is the one current *at admission*;
//!   a concurrent reload never changes an admitted request's answer.
//! * A full shard queue sheds instantly (`overload` + `retry_after_ms`);
//!   nothing waits anywhere unbounded.
//! * A deadline that expires while the job is still queued cancels it at
//!   pop time (`deadline` error) without doing the work.
//! * Worker panics are confined to the request that caused them
//!   (`panic` error); the worker thread survives.
//! * Malformed frames get `parse` errors on the same connection; an
//!   oversized or stalled (slow-loris) partial frame drops only that
//!   connection.  Pipelined jobs already admitted when their connection
//!   dies are still executed and counted (their replies are discarded).
//! * Shutdown stops admissions, then drains: every admitted request is
//!   answered before the daemon exits.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mdes_engine::Engine;
use mdes_sched::DepGraph;
use mdes_telemetry::json::Json;
use mdes_telemetry::{LatencyRecorder, Telemetry};
use mdes_workload::{generate_compiled_regions, RegionConfig};

use crate::image::{ImageStore, ReloadOutcome, ServeImage};
use crate::proto::{
    err_response, obj, ok_response, parse_frame, ErrorCode, Request, WorkParams, MAX_FRAME,
};
use crate::queue::{AdmissionQueue, PushError};

/// Where the daemon listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BindAddr {
    /// A filesystem Unix socket (removed on shutdown).
    Unix(PathBuf),
    /// A TCP address like `127.0.0.1:0` (0 picks an ephemeral port).
    Tcp(String),
}

/// Daemon tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Request worker threads.
    pub workers: usize,
    /// Admission queue bound; pushes past it shed.
    pub queue_capacity: usize,
    /// How long a *partial* frame may dangle before the connection is
    /// dropped as a slow-loris writer.  Idle connections (no partial
    /// frame) are never timed out.
    pub read_timeout_ms: u64,
    /// Deadline applied to work requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Enables the `poison` verb (deliberate worker panic, for chaos
    /// testing panic isolation).
    pub chaos: bool,
    /// Seed for reload vetting and the reload oracle.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            read_timeout_ms: 2_000,
            default_deadline_ms: None,
            chaos: false,
            seed: 0x5E17E,
        }
    }
}

/// Monotonic serving counters plus the latency reservoir.  Everything is
/// lock-free except the reservoir, which takes one short mutex per
/// answered request.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Work requests admitted to the queue.
    pub admitted: AtomicU64,
    /// Work requests answered (success or error) after admission.
    pub answered: AtomicU64,
    /// Work requests shed by the full queue.
    pub shed: AtomicU64,
    /// Admitted requests cancelled at pop time by their deadline.
    pub deadline_exceeded: AtomicU64,
    /// Jobs that panicked (isolated; answered with a `panic` error).
    pub panics: AtomicU64,
    /// Worker panics reported by the scheduling engine itself.
    pub engine_panics: AtomicU64,
    /// Frames rejected by the codec.
    pub parse_errors: AtomicU64,
    /// Connections dropped for an oversized partial frame.
    pub oversized_frames: AtomicU64,
    /// Connections dropped for a stalled partial frame.
    pub slow_loris_drops: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Successful promotions.
    pub reloads: AtomicU64,
    /// Rejected reloads (old image kept serving).
    pub reload_failures: AtomicU64,
    /// Reloads recognized as byte-identical no-ops.
    pub reload_noops: AtomicU64,
    /// Promotions that skipped recompilation via the content cache.
    pub reload_cache_hits: AtomicU64,
    /// Per-request latency (admission to answer), microseconds.
    pub latency: LatencyRecorder,
}

impl ServeStats {
    fn new() -> ServeStats {
        ServeStats {
            latency: LatencyRecorder::new(4096),
            ..ServeStats::default()
        }
    }

    /// Requests admitted but not (yet) answered.  Zero on a quiescent
    /// daemon; the chaos harness asserts it is zero after drain.
    pub fn in_flight(&self) -> u64 {
        self.admitted
            .load(Ordering::Relaxed)
            .saturating_sub(self.answered.load(Ordering::Relaxed))
    }

    /// The `stats` verb payload.
    pub fn to_json(&self, image: &ServeImage, queue_depth: usize) -> Json {
        let c = |a: &AtomicU64| Json::Num(a.load(Ordering::Relaxed) as f64);
        obj(vec![
            ("admitted", c(&self.admitted)),
            ("answered", c(&self.answered)),
            ("shed", c(&self.shed)),
            ("deadline_exceeded", c(&self.deadline_exceeded)),
            ("panics", c(&self.panics)),
            ("engine_worker_panics", c(&self.engine_panics)),
            ("parse_errors", c(&self.parse_errors)),
            ("oversized_frames", c(&self.oversized_frames)),
            ("slow_loris_drops", c(&self.slow_loris_drops)),
            ("connections", c(&self.connections)),
            ("reloads", c(&self.reloads)),
            ("reload_failures", c(&self.reload_failures)),
            ("reload_noops", c(&self.reload_noops)),
            ("reload_cache_hits", c(&self.reload_cache_hits)),
            ("in_flight", Json::Num(self.in_flight() as f64)),
            ("queue_depth", Json::Num(queue_depth as f64)),
            ("epoch", Json::Num(image.epoch as f64)),
            ("hash", Json::Str(format!("{:016x}", image.hash))),
            ("origin", Json::Str(image.origin.clone())),
            (
                "p50_us",
                Json::Num(self.latency.percentile(0.50).unwrap_or(0) as f64),
            ),
            (
                "p99_us",
                Json::Num(self.latency.percentile(0.99).unwrap_or(0) as f64),
            ),
        ])
    }

    /// Folds the serving counters into a telemetry registry under
    /// `serve/*` (and the engine-panic gate under `engine/*`).  Counters
    /// are always created — a clean run publishes explicit zeros so
    /// metrics consumers can gate on `serve/dropped` and
    /// `engine/worker_panics` being present *and* zero.
    pub fn publish(&self, tel: &Telemetry) {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        tel.counter_add("serve/admitted", load(&self.admitted));
        tel.counter_add("serve/answered", load(&self.answered));
        tel.counter_add("serve/shed", load(&self.shed));
        tel.counter_add("serve/deadline_exceeded", load(&self.deadline_exceeded));
        tel.counter_add("serve/panics", load(&self.panics));
        tel.counter_add("serve/parse_errors", load(&self.parse_errors));
        tel.counter_add("serve/oversized_frames", load(&self.oversized_frames));
        tel.counter_add("serve/slow_loris_drops", load(&self.slow_loris_drops));
        tel.counter_add("serve/connections", load(&self.connections));
        tel.counter_add("serve/reloads", load(&self.reloads));
        tel.counter_add("serve/reload_failures", load(&self.reload_failures));
        tel.counter_add("serve/reload_cache_hits", load(&self.reload_cache_hits));
        tel.counter_add("serve/dropped", self.in_flight());
        tel.counter_add("engine/worker_panics", load(&self.engine_panics));
        tel.gauge_set(
            "serve/p50_us",
            self.latency.percentile(0.50).unwrap_or(0) as f64,
        );
        tel.gauge_set(
            "serve/p99_us",
            self.latency.percentile(0.99).unwrap_or(0) as f64,
        );
    }

    /// Publishes the work-path counters under `serve/shard/<name>/*`.
    /// Connection-level counters (parse errors, slow-loris drops, …) are
    /// global by nature and stay under `serve/*`.
    pub fn publish_shard(&self, tel: &Telemetry, name: &str) {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let key = |suffix: &str| format!("serve/shard/{name}/{suffix}");
        tel.counter_add(&key("admitted"), load(&self.admitted));
        tel.counter_add(&key("answered"), load(&self.answered));
        tel.counter_add(&key("shed"), load(&self.shed));
        tel.counter_add(&key("deadline_exceeded"), load(&self.deadline_exceeded));
        tel.counter_add(&key("panics"), load(&self.panics));
        tel.counter_add(&key("reloads"), load(&self.reloads));
        tel.counter_add(&key("reload_failures"), load(&self.reload_failures));
        tel.counter_add(&key("reload_cache_hits"), load(&self.reload_cache_hits));
        tel.counter_add(&key("dropped"), self.in_flight());
        tel.gauge_set(
            &key("p50_us"),
            self.latency.percentile(0.50).unwrap_or(0) as f64,
        );
        tel.gauge_set(
            &key("p99_us"),
            self.latency.percentile(0.99).unwrap_or(0) as f64,
        );
    }

    /// The per-shard entry inside the `stats` verb's `shards` object.
    fn to_shard_json(&self, image: &ServeImage, queue_depth: usize) -> Json {
        let c = |a: &AtomicU64| Json::Num(a.load(Ordering::Relaxed) as f64);
        obj(vec![
            ("admitted", c(&self.admitted)),
            ("answered", c(&self.answered)),
            ("shed", c(&self.shed)),
            ("deadline_exceeded", c(&self.deadline_exceeded)),
            ("panics", c(&self.panics)),
            ("reloads", c(&self.reloads)),
            ("reload_failures", c(&self.reload_failures)),
            ("reload_noops", c(&self.reload_noops)),
            ("reload_cache_hits", c(&self.reload_cache_hits)),
            ("in_flight", Json::Num(self.in_flight() as f64)),
            ("queue_depth", Json::Num(queue_depth as f64)),
            ("epoch", Json::Num(image.epoch as f64)),
            ("hash", Json::Str(format!("{:016x}", image.hash))),
            ("origin", Json::Str(image.origin.clone())),
            (
                "p50_us",
                Json::Num(self.latency.percentile(0.50).unwrap_or(0) as f64),
            ),
            (
                "p99_us",
                Json::Num(self.latency.percentile(0.99).unwrap_or(0) as f64),
            ),
        ])
    }
}

/// What a worker executes for one admitted request.
enum JobKind {
    Work {
        params: WorkParams,
        verify: bool,
    },
    /// Chaos: panic on purpose inside the isolation boundary.
    Poison,
}

/// Where a worker delivers a finished reply line.
enum ReplySink {
    /// v1 serial path: the connection reader blocks on this rendezvous
    /// before it reads the next frame.
    Rendezvous(mpsc::SyncSender<String>),
    /// v2 pipelined path: the line goes straight to the connection's
    /// writer thread, in completion order.
    Writer(mpsc::Sender<String>),
}

impl ReplySink {
    /// Delivers the reply.  The connection may have died while the job
    /// ran; the request still counts as answered, so failures to deliver
    /// are deliberately ignored.
    fn send(&self, line: String) {
        match self {
            ReplySink::Rendezvous(tx) => {
                let _ = tx.send(line);
            }
            ReplySink::Writer(tx) => {
                let _ = tx.send(line);
            }
        }
    }
}

struct Job {
    id: u64,
    kind: JobKind,
    /// The serving image captured at admission.
    image: Arc<ServeImage>,
    deadline: Option<Instant>,
    admitted_at: Instant,
    reply: ReplySink,
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

pub(crate) enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    /// Connects to a daemon (client side of the same framing).
    pub(crate) fn connect(addr: &BindAddr) -> std::io::Result<Stream> {
        match addr {
            BindAddr::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            BindAddr::Tcp(spec) => TcpStream::connect(spec).map(Stream::Tcp),
        }
    }

    pub(crate) fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// A second handle on the same socket, for the writer thread.
    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// One served machine: its own swap point, admission queue, worker
/// pool, and counters.  Isolation between machines falls out of the
/// structure — shards share nothing but the listener.
pub struct Shard {
    /// Routing name (the `machine` field targets this).
    name: String,
    store: Arc<ImageStore>,
    queue: AdmissionQueue<Job>,
    stats: Arc<ServeStats>,
}

impl Shard {
    /// The shard's routing name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shard's image store.
    pub fn store(&self) -> &Arc<ImageStore> {
        &self.store
    }

    /// The shard's work-path counters.
    pub fn stats(&self) -> &Arc<ServeStats> {
        &self.stats
    }
}

/// Shared daemon state.
struct Shared {
    /// Boot-order shards; index 0 is the default (v1) routing target.
    shards: Vec<Shard>,
    stats: Arc<ServeStats>,
    config: ServeConfig,
    shutdown: AtomicBool,
}

impl Shared {
    /// Routes a frame's `machine` field to a shard.
    fn shard_for(&self, machine: Option<&str>) -> Option<&Shard> {
        match machine {
            None => self.shards.first(),
            Some(name) => self.shards.iter().find(|shard| shard.name == name),
        }
    }

    /// The `parse` error for a `machine` the daemon does not serve.
    fn unknown_machine(&self, id: u64, name: &str) -> String {
        let served: Vec<&str> = self.shards.iter().map(|s| s.name.as_str()).collect();
        err_response(
            id,
            ErrorCode::Parse,
            &format!(
                "machine `{name}` is not served here (serving: {})",
                served.join(", ")
            ),
            None,
        )
    }
}

/// A running daemon.  Dropping the handle does *not* stop it; call
/// [`ServerHandle::shutdown`] (or send the `shutdown` verb) first and
/// then [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: BindAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The resolved bind address (TCP port filled in for `:0` binds).
    pub fn addr(&self) -> &BindAddr {
        &self.addr
    }

    /// The daemon-wide serving statistics (shared with the daemon
    /// threads).  Per-shard counters live on [`ServerHandle::shards`].
    pub fn stats(&self) -> &Arc<ServeStats> {
        &self.shared.stats
    }

    /// The default (boot) shard's image store.
    pub fn store(&self) -> &Arc<ImageStore> {
        &self.shared.shards[0].store
    }

    /// The shards, in boot order (index 0 is the default route).
    pub fn shards(&self) -> &[Shard] {
        &self.shared.shards
    }

    /// A shard by routing name.
    pub fn shard(&self, name: &str) -> Option<&Shard> {
        self.shared.shards.iter().find(|s| s.name == name)
    }

    /// Publishes the daemon-wide counters under `serve/*` plus each
    /// shard's work-path counters under `serve/shard/<name>/*`.
    pub fn publish_stats(&self, tel: &Telemetry) {
        self.shared.stats.publish(tel);
        for shard in &self.shared.shards {
            shard.stats.publish_shard(tel, &shard.name);
        }
    }

    /// Requests shutdown from the owning process, as if a `shutdown`
    /// verb had arrived.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared, &self.addr);
    }

    /// Waits for the daemon to finish (after a `shutdown` verb or
    /// [`ServerHandle::shutdown`]).  Every admitted request is answered
    /// before this returns.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The accept loop has exited, so no *new* connection threads can
        // appear; join the ones that exist.
        let connections = std::mem::take(&mut *self.connections.lock().unwrap());
        for conn in connections {
            let _ = conn.join();
        }
        // All connections are gone, so no new pushes: close and drain.
        for shard in &self.shared.shards {
            shard.queue.close();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let BindAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn trigger_shutdown(shared: &Shared, addr: &BindAddr) {
    shared.shutdown.store(true, Ordering::SeqCst);
    for shard in &shared.shards {
        shard.queue.close();
    }
    // Wake the accept loop with a throwaway connection.
    match addr {
        BindAddr::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
        BindAddr::Tcp(tcp) => {
            let _ = TcpStream::connect(tcp);
        }
    }
}

/// Binds `addr` and starts a single-shard daemon (the v1 shape): the
/// shard's routing name is the serving image's origin.  Returns once
/// the socket is listening, so a caller may connect immediately.
pub fn serve(
    addr: BindAddr,
    store: Arc<ImageStore>,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let name = store.current().origin.clone();
    serve_sharded(addr, vec![(name, store)], config)
}

/// Binds `addr` and starts the daemon threads with one shard per named
/// store; the first entry is the default routing target.  Returns once
/// the socket is listening, so a caller may connect immediately.
///
/// # Errors
///
/// Fails with `InvalidInput` on an empty or duplicate-named shard list,
/// otherwise propagates socket errors.
pub fn serve_sharded(
    addr: BindAddr,
    stores: Vec<(String, Arc<ImageStore>)>,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    if stores.is_empty() {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            "a daemon needs at least one shard",
        ));
    }
    for (i, (name, _)) in stores.iter().enumerate() {
        if stores[..i].iter().any(|(seen, _)| seen == name) {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                format!("duplicate shard name `{name}`"),
            ));
        }
    }
    let (listener, addr) = match addr {
        BindAddr::Unix(path) => {
            // A stale socket file from a crashed predecessor would make
            // the bind fail; remove it (connect-tested removal is racy
            // and the daemon owns its path by contract).
            let _ = std::fs::remove_file(&path);
            (
                Listener::Unix(UnixListener::bind(&path)?),
                BindAddr::Unix(path),
            )
        }
        BindAddr::Tcp(spec) => {
            let listener = TcpListener::bind(&spec)?;
            let resolved = listener.local_addr()?.to_string();
            (Listener::Tcp(listener), BindAddr::Tcp(resolved))
        }
    };

    let shards = stores
        .into_iter()
        .map(|(name, store)| Shard {
            name,
            store,
            queue: AdmissionQueue::new(config.queue_capacity),
            stats: Arc::new(ServeStats::new()),
        })
        .collect();
    let shared = Arc::new(Shared {
        shards,
        stats: Arc::new(ServeStats::new()),
        config,
        shutdown: AtomicBool::new(false),
    });

    // One worker pool per shard: a wedged or flooded shard keeps its
    // threads busy without starving any other shard's queue.
    let workers = (0..shared.shards.len())
        .flat_map(|shard_index| (0..shared.config.workers.max(1)).map(move |_| shard_index))
        .map(|shard_index| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared, shard_index))
        })
        .collect();

    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let shared = Arc::clone(&shared);
        let connections = Arc::clone(&connections);
        let accept_addr = addr.clone();
        std::thread::spawn(move || accept_loop(listener, &accept_addr, &shared, &connections))
    };

    Ok(ServerHandle {
        shared,
        addr,
        accept: Some(accept),
        workers,
        connections,
    })
}

fn accept_loop(
    listener: Listener,
    addr: &BindAddr,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let stream = match &listener {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream {
            Ok(stream) => {
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                let conn_addr = addr.clone();
                let handle =
                    std::thread::spawn(move || connection_loop(stream, &shared, &conn_addr));
                connections.lock().unwrap().push(handle);
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (EMFILE etc): keep listening.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Granularity of the read loop: how often a blocked read wakes to check
/// the shutdown flag and the slow-loris budget.
const READ_TICK: Duration = Duration::from_millis(100);

fn connection_loop(stream: Stream, shared: &Arc<Shared>, addr: &BindAddr) {
    // The reader keeps `stream`; the writer thread gets a second handle
    // on the same socket and owns all outbound bytes, so pipelined
    // replies can never interleave mid-line with inline ones.
    let write_half = match stream.try_clone() {
        Ok(half) => half,
        Err(_) => return,
    };
    let (out, out_rx) = mpsc::channel::<String>();
    let writer = std::thread::spawn(move || writer_loop(write_half, out_rx));
    read_loop(stream, &out, shared, addr);
    // Dropping the reader's sender lets the writer exit once every
    // still-running pipelined job has delivered (or dropped) its reply;
    // joining it keeps the drain inside this connection's lifetime.
    drop(out);
    let _ = writer.join();
}

/// Serializes reply lines onto the socket until every sender (the
/// reader plus any in-flight pipelined jobs) is gone.  After a write
/// error the remaining replies are drained and discarded — the jobs
/// still count as answered.
fn writer_loop(mut stream: Stream, replies: mpsc::Receiver<String>) {
    let mut broken = false;
    while let Ok(line) = replies.recv() {
        if !broken && stream.write_all(line.as_bytes()).is_err() {
            broken = true;
        }
    }
}

fn read_loop(
    mut stream: Stream,
    out: &mpsc::Sender<String>,
    shared: &Arc<Shared>,
    addr: &BindAddr,
) {
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let stats = &shared.stats;
    let mut buf: Vec<u8> = Vec::new();
    let mut partial_since: Option<Instant> = None;
    let mut chunk = [0u8; 4096];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) && buf.is_empty() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    partial_since = None;
                    let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                    if !handle_line(&text, out, shared, addr) {
                        return;
                    }
                }
                if buf.is_empty() {
                    partial_since = None;
                } else {
                    partial_since.get_or_insert_with(Instant::now);
                    if buf.len() > MAX_FRAME {
                        stats.oversized_frames.fetch_add(1, Ordering::Relaxed);
                        let _ = out.send(err_response(
                            0,
                            ErrorCode::Parse,
                            "frame exceeds maximum size; closing connection",
                            None,
                        ));
                        return;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if let Some(since) = partial_since {
                    if since.elapsed().as_millis() as u64 >= shared.config.read_timeout_ms {
                        stats.slow_loris_drops.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Handles one complete request line, sending replies through the
/// connection's writer.  Returns `false` when the connection must close
/// (shutdown acknowledged).
fn handle_line(
    line: &str,
    out: &mpsc::Sender<String>,
    shared: &Arc<Shared>,
    addr: &BindAddr,
) -> bool {
    let stats = &shared.stats;
    let frame = match parse_frame(line) {
        Ok(frame) => frame,
        Err(wire) => {
            if wire.code == ErrorCode::Parse {
                stats.parse_errors.fetch_add(1, Ordering::Relaxed);
            }
            let _ = out.send(err_response(wire.id, wire.code, &wire.message, None));
            return true;
        }
    };
    let id = frame.reply_id();
    let shard = match shared.shard_for(frame.machine.as_deref()) {
        Some(shard) => shard,
        None => {
            stats.parse_errors.fetch_add(1, Ordering::Relaxed);
            let name = frame.machine.as_deref().unwrap_or("");
            let _ = out.send(shared.unknown_machine(id, name));
            return true;
        }
    };
    let response = match frame.request {
        Request::Query => {
            let image = shard.store.current();
            ok_response(
                id,
                obj(vec![
                    ("epoch", Json::Num(image.epoch as f64)),
                    ("hash", Json::Str(format!("{:016x}", image.hash))),
                    ("origin", Json::Str(image.origin.clone())),
                    ("machine", Json::Str(shard.name.clone())),
                    ("classes", Json::Num(image.mdes.classes().len() as f64)),
                    ("resources", Json::Num(image.mdes.num_resources() as f64)),
                    ("options", Json::Num(image.mdes.num_options() as f64)),
                ]),
            )
        }
        Request::Stats => {
            let image = shard.store.current();
            let depth: usize = shared.shards.iter().map(|s| s.queue.depth()).sum();
            let body = stats.to_json(&image, depth);
            let shards = shared
                .shards
                .iter()
                .map(|s| {
                    (
                        s.name.clone(),
                        s.stats.to_shard_json(&s.store.current(), s.queue.depth()),
                    )
                })
                .collect();
            let body = match body {
                Json::Obj(mut map) => {
                    map.insert("shards".to_string(), Json::Obj(shards));
                    Json::Obj(map)
                }
                other => other,
            };
            ok_response(id, body)
        }
        Request::Reload { path } => match shard.store.reload_path(&path) {
            Ok(ReloadOutcome::Promoted { image, cache_hit }) => {
                stats.reloads.fetch_add(1, Ordering::Relaxed);
                shard.stats.reloads.fetch_add(1, Ordering::Relaxed);
                if cache_hit {
                    stats.reload_cache_hits.fetch_add(1, Ordering::Relaxed);
                    shard
                        .stats
                        .reload_cache_hits
                        .fetch_add(1, Ordering::Relaxed);
                }
                ok_response(
                    id,
                    obj(vec![
                        ("changed", Json::Bool(true)),
                        ("cache_hit", Json::Bool(cache_hit)),
                        ("epoch", Json::Num(image.epoch as f64)),
                        ("hash", Json::Str(format!("{:016x}", image.hash))),
                    ]),
                )
            }
            Ok(ReloadOutcome::Unchanged { epoch, hash }) => {
                stats.reload_noops.fetch_add(1, Ordering::Relaxed);
                shard.stats.reload_noops.fetch_add(1, Ordering::Relaxed);
                ok_response(
                    id,
                    obj(vec![
                        ("changed", Json::Bool(false)),
                        ("cache_hit", Json::Bool(true)),
                        ("epoch", Json::Num(epoch as f64)),
                        ("hash", Json::Str(format!("{hash:016x}"))),
                    ]),
                )
            }
            Err(err) => {
                stats.reload_failures.fetch_add(1, Ordering::Relaxed);
                shard.stats.reload_failures.fetch_add(1, Ordering::Relaxed);
                err_response(id, err.code(), err.message(), None)
            }
        },
        Request::Shutdown => {
            let _ = out.send(ok_response(id, obj(vec![("stopping", Json::Bool(true))])));
            trigger_shutdown(shared, addr);
            return false;
        }
        Request::Poison if !shared.config.chaos => err_response(
            id,
            ErrorCode::General,
            "`poison` requires the daemon to run with chaos mode enabled",
            None,
        ),
        Request::Poison => return admit(frame.id, JobKind::Poison, None, out, shard, shared),
        Request::Schedule {
            params,
            deadline_ms,
        } => {
            return admit(
                frame.id,
                JobKind::Work {
                    params,
                    verify: false,
                },
                deadline_ms,
                out,
                shard,
                shared,
            )
        }
        Request::Verify {
            params,
            deadline_ms,
        } => {
            return admit(
                frame.id,
                JobKind::Work {
                    params,
                    verify: true,
                },
                deadline_ms,
                out,
                shard,
                shared,
            )
        }
    };
    let _ = out.send(response);
    true
}

/// Admits a work request to `shard`: captures its serving image and
/// pushes the job.  A request with an `id` returns immediately (the
/// worker routes the reply through the connection writer, possibly out
/// of admission order); a request without one blocks for the worker's
/// rendezvous reply, preserving v1 serial semantics.  Sheds instantly
/// when the shard's queue is full.
fn admit(
    frame_id: Option<u64>,
    kind: JobKind,
    deadline_ms: Option<u64>,
    out: &mpsc::Sender<String>,
    shard: &Shard,
    shared: &Arc<Shared>,
) -> bool {
    let id = frame_id.unwrap_or(0);
    let admitted_at = Instant::now();
    let deadline = deadline_ms
        .or(shared.config.default_deadline_ms)
        .map(|ms| admitted_at + Duration::from_millis(ms));
    let (reply, wait) = match frame_id {
        Some(_) => (ReplySink::Writer(out.clone()), None),
        None => {
            let (tx, rx) = mpsc::sync_channel(1);
            (ReplySink::Rendezvous(tx), Some(rx))
        }
    };
    let job = Job {
        id,
        kind,
        image: shard.store.current(),
        deadline,
        admitted_at,
        reply,
    };
    match shard.queue.push(job) {
        Ok(()) => {
            shared.stats.admitted.fetch_add(1, Ordering::Relaxed);
            shard.stats.admitted.fetch_add(1, Ordering::Relaxed);
            if let Some(rx) = wait {
                let line = match rx.recv() {
                    Ok(line) => line,
                    // A worker always replies; reaching this means the
                    // pool died, which the daemon treats as an internal
                    // error.
                    Err(_) => err_response(id, ErrorCode::General, "worker pool unavailable", None),
                };
                let _ = out.send(line);
            }
            true
        }
        Err(PushError::Full(_)) => {
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            shard.stats.shed.fetch_add(1, Ordering::Relaxed);
            // Hint scales with how much work each waiting slot in *this
            // shard's* queue implies.
            let hint = 5 + (shard.queue.depth() as u64 * 10) / shared.config.workers.max(1) as u64;
            let _ = out.send(err_response(
                id,
                ErrorCode::Overload,
                "admission queue full; request shed",
                Some(hint),
            ));
            true
        }
        Err(PushError::Closed(_)) => {
            let _ = out.send(err_response(
                id,
                ErrorCode::General,
                "daemon is shutting down",
                None,
            ));
            false
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, shard_index: usize) {
    let shard = &shared.shards[shard_index];
    while let Some(job) = shard.queue.pop() {
        let line = if job
            .deadline
            .is_some_and(|deadline| Instant::now() > deadline)
        {
            shared
                .stats
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            shard
                .stats
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            err_response(
                job.id,
                ErrorCode::Deadline,
                "deadline expired before the job started",
                None,
            )
        } else {
            execute(&job, &shared.stats, &shard.stats)
        };
        let latency_us = job.admitted_at.elapsed().as_micros() as u64;
        shared.stats.latency.record(latency_us);
        shard.stats.latency.record(latency_us);
        shared.stats.answered.fetch_add(1, Ordering::Relaxed);
        shard.stats.answered.fetch_add(1, Ordering::Relaxed);
        // The connection may have died while we worked; the request
        // still counts as answered.
        job.reply.send(line);
    }
}

/// Runs one job inside the panic-isolation boundary.
fn execute(job: &Job, global: &ServeStats, shard: &ServeStats) -> String {
    let outcome = catch_unwind(AssertUnwindSafe(|| match &job.kind {
        JobKind::Poison => panic!("poison verb"),
        JobKind::Work { params, verify } => {
            run_work(job.id, *params, *verify, &job.image, global, shard)
        }
    }));
    match outcome {
        Ok(line) => line,
        Err(_) => {
            global.panics.fetch_add(1, Ordering::Relaxed);
            shard.panics.fetch_add(1, Ordering::Relaxed);
            err_response(
                job.id,
                ErrorCode::Panic,
                "job panicked; the panic was isolated to this request",
                None,
            )
        }
    }
}

fn run_work(
    id: u64,
    params: WorkParams,
    verify: bool,
    image: &ServeImage,
    global: &ServeStats,
    shard: &ServeStats,
) -> String {
    let config = RegionConfig::new(params.regions)
        .with_mean_ops(params.mean_ops)
        .with_seed(params.seed);
    let workload = generate_compiled_regions(&image.mdes, &config);
    let engine = Engine::new(Arc::clone(&image.mdes));
    let outcome = engine.schedule_batch(&workload.blocks, params.jobs);
    global
        .engine_panics
        .fetch_add(outcome.worker_panics(), Ordering::Relaxed);
    shard
        .engine_panics
        .fetch_add(outcome.worker_panics(), Ordering::Relaxed);
    if !outcome.is_clean() {
        return err_response(
            id,
            ErrorCode::Panic,
            "a scheduling job panicked inside the engine",
            None,
        );
    }
    if verify {
        for (block, schedule) in workload.blocks.iter().zip(&outcome.schedules) {
            let schedule = schedule.as_ref().expect("clean batch has every schedule");
            let graph = DepGraph::build(block, &image.mdes);
            if let Err(why) = schedule.verify(&graph, &image.mdes) {
                return err_response(
                    id,
                    ErrorCode::General,
                    &format!("schedule failed verification: {why}"),
                    None,
                );
            }
        }
    }
    ok_response(
        id,
        obj(vec![
            ("epoch", Json::Num(image.epoch as f64)),
            ("hash", Json::Str(format!("{:016x}", image.hash))),
            ("regions", Json::Num(outcome.completed() as f64)),
            ("ops", Json::Num(workload.total_ops as f64)),
            ("cycles", Json::Num(outcome.total_cycles() as f64)),
            ("attempts", Json::Num(outcome.stats.attempts as f64)),
            ("verified", Json::Bool(verify)),
        ]),
    )
}
