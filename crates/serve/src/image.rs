//! The serving image store: epoch handoff, guarded reload, and the
//! content-hashed compile cache.
//!
//! The daemon serves from an immutable [`ServeImage`] behind an
//! `Arc`-swap: admission captures the current `Arc`, a reload builds and
//! vets a *new* image off to the side and swaps the pointer only after
//! every check passes.  In-flight requests keep scheduling against the
//! `Arc` they captured — a reload never changes an admitted request's
//! answer — and a failed reload changes nothing at all: the old image
//! keeps serving (rollback is the absence of the swap).
//!
//! Reload sources are content-hashed (FNV-1a over the raw bytes) before
//! any parsing.  Reloading bytes identical to the serving image is a
//! no-op; reloading bytes seen earlier reuses the cached compiled
//! description and skips recompilation *and* re-vetting (both are pure
//! functions of the bytes).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mdes_core::{lmdes, CompiledMdes, UsageEncoding};
use mdes_guard::{vet_image, GuardConfig};
use mdes_opt::pipeline::PipelineConfig;
use mdes_telemetry::Telemetry;

use crate::proto::ErrorCode;

/// Cached compiled descriptions kept before the cache resets.  Bounds
/// daemon memory against a chaos client reloading many distinct images.
const MAX_CACHED_IMAGES: usize = 16;

/// FNV-1a over `bytes` — the content hash keying the compile cache and
/// identifying the serving image on the wire.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// One immutable generation of the serving description.
#[derive(Debug)]
pub struct ServeImage {
    /// The compiled description requests schedule against.
    pub mdes: Arc<CompiledMdes>,
    /// Monotonic generation counter; bumped by every promotion.
    pub epoch: u64,
    /// Content hash of the source bytes this generation came from.
    pub hash: u64,
    /// Where the bytes came from (a path, or a boot label).
    pub origin: String,
}

/// Why a reload was refused.  The mapping to wire/exit codes is part of
/// the protocol contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReloadError {
    /// The source could not be read at all.
    Io(String),
    /// The bytes decode as neither an LMDES image nor HMDL source.
    Parse(String),
    /// Decoded, but rejected by structural validation / image vetting.
    Validation(String),
    /// HMDL optimization was rejected by the differential oracle.
    Oracle(String),
}

impl ReloadError {
    /// The wire error code this rejection answers with.
    pub fn code(&self) -> ErrorCode {
        match self {
            ReloadError::Io(_) => ErrorCode::General,
            ReloadError::Parse(_) => ErrorCode::Parse,
            ReloadError::Validation(_) => ErrorCode::Validation,
            ReloadError::Oracle(_) => ErrorCode::Oracle,
        }
    }

    /// The rejection reason.
    pub fn message(&self) -> &str {
        match self {
            ReloadError::Io(m)
            | ReloadError::Parse(m)
            | ReloadError::Validation(m)
            | ReloadError::Oracle(m) => m,
        }
    }
}

/// What a successful reload did.
#[derive(Clone, Debug)]
pub enum ReloadOutcome {
    /// A new generation is serving.
    Promoted {
        /// The promoted image.
        image: Arc<ServeImage>,
        /// Whether compilation was skipped via the content cache.
        cache_hit: bool,
    },
    /// The bytes hash identically to the serving image; nothing changed.
    Unchanged {
        /// The (unchanged) serving epoch.
        epoch: u64,
        /// The shared content hash.
        hash: u64,
    },
}

/// Compiles and vets reload source bytes — an LMDES binary image
/// (sniffed by magic) or HMDL source text — without touching any store
/// state.  Pure in `(bytes, seed)`.
pub fn compile_source(bytes: &[u8], seed: u64) -> Result<Arc<CompiledMdes>, ReloadError> {
    let mdes = if bytes.starts_with(lmdes::MAGIC) {
        // Fast path: one allocation-free validating scan replaces the
        // old double walk (full static triage followed by a full
        // decode).  The static triage still runs whenever the scan
        // rejects — it classifies *why* the bytes are bad (truncation
        // vs tampered length vs trailing garbage) with a stable MD10x
        // code, where the scanner only says "no" — and for images large
        // enough (>= 2^24 bytes) that triage's MD104 plausibility bound
        // could fire on a count the byte-bounded scan accepts.
        let scanned = match lmdes::scan(bytes) {
            Ok(scanned) if bytes.len() < (1 << 24) => scanned,
            other => {
                let triage = mdes_analyze::analyze_image(bytes);
                if let Some(diag) = triage.first_fatal() {
                    return Err(ReloadError::Parse(format!(
                        "bad LMDES image [{}]: {}",
                        diag.code, diag.message
                    )));
                }
                other.map_err(|e| ReloadError::Parse(format!("bad LMDES image: {e}")))?
            }
        };
        scanned
            .materialize()
            .map_err(|e| ReloadError::Parse(format!("bad LMDES image: {e}")))?
    } else {
        let source = std::str::from_utf8(bytes)
            .map_err(|_| ReloadError::Parse("source is neither LMDES nor UTF-8 HMDL".into()))?;
        let mut spec = mdes_lang::compile(source)
            .map_err(|e| ReloadError::Parse(format!("bad HMDL source: {e}")))?;
        // A parsed description with a fatal diagnostic (unsatisfiable
        // class, latency-window overflow) must never be promoted: reject
        // before spending oracle time, anchored to the source line.
        let mut analysis = mdes_analyze::analyze_spec(&spec);
        if analysis.has_fatal() {
            mdes_analyze::anchor_spans(&mut analysis.diagnostics, source);
            let diag = analysis.first_fatal().expect("has_fatal");
            let at = diag
                .span
                .map(|(line, col)| format!(" at line {line}:{col}"))
                .unwrap_or_default();
            return Err(ReloadError::Validation(format!(
                "static analysis rejected the description [{}]{at}: {}",
                diag.code, diag.message
            )));
        }
        let guard = GuardConfig::oracle(seed);
        let report = mdes_guard::optimize_guarded(
            &mut spec,
            &PipelineConfig::full(),
            &guard,
            &Telemetry::disabled(),
        );
        if let Some(incident) = report.incidents.first() {
            // The guard already rolled the bad stage back, but a reload
            // that trips the oracle is a reload of something broken —
            // refuse promotion and keep serving the old image.
            return Err(ReloadError::Oracle(format!(
                "differential oracle rejected stage `{}`: {}",
                incident.stage, incident.detail
            )));
        }
        CompiledMdes::compile(&spec, UsageEncoding::BitVector)
            .map_err(|e| ReloadError::Validation(e.to_string()))?
    };
    vet_image(&mdes, seed).map_err(ReloadError::Validation)?;
    Ok(Arc::new(mdes))
}

/// Compiles a bundled machine the way the daemon boots it: full
/// optimization pipeline, bit-vector encoding.  Shared by the CLI's
/// `serve` boot path and by the closed-loop client's local verifier, so
/// both sides derive the *same* description (and therefore the same
/// canonical image hash) from a machine name.
pub fn compile_machine(machine: mdes_machines::Machine) -> Arc<CompiledMdes> {
    let mut spec = machine.spec();
    mdes_opt::pipeline::optimize_with_telemetry(
        &mut spec,
        &PipelineConfig::full(),
        &Telemetry::disabled(),
    );
    Arc::new(
        CompiledMdes::compile(&spec, UsageEncoding::BitVector)
            .expect("bundled machines always compile"),
    )
}

/// The swap point: current image plus the content-keyed compile cache.
#[derive(Debug)]
pub struct ImageStore {
    current: Mutex<Arc<ServeImage>>,
    cache: Mutex<HashMap<u64, Arc<CompiledMdes>>>,
    /// Serializes reloads; request admission never takes this.
    reload: Mutex<()>,
    /// Vetting / oracle seed for every reload through this store.
    seed: u64,
}

impl ImageStore {
    /// Boots the store with an already-trusted description at epoch 0.
    /// The boot hash is taken over the canonical serialized image, so a
    /// later reload of a byte-identical export is recognized as a no-op.
    pub fn new(mdes: Arc<CompiledMdes>, origin: &str, seed: u64) -> ImageStore {
        let hash = content_hash(&lmdes::write(&mdes));
        let image = Arc::new(ServeImage {
            mdes: Arc::clone(&mdes),
            epoch: 0,
            hash,
            origin: origin.to_string(),
        });
        let mut cache = HashMap::new();
        cache.insert(hash, mdes);
        ImageStore {
            current: Mutex::new(image),
            cache: Mutex::new(cache),
            reload: Mutex::new(()),
            seed,
        }
    }

    /// The serving image.  Admission calls this once per request and
    /// holds the returned `Arc` for the request's whole lifetime.
    pub fn current(&self) -> Arc<ServeImage> {
        Arc::clone(&self.current.lock().unwrap())
    }

    /// Reloads from raw source bytes: hash, (maybe) compile, vet,
    /// promote.  Concurrent reloads serialize; failure leaves the
    /// serving image untouched.
    pub fn reload_bytes(&self, bytes: &[u8], origin: &str) -> Result<ReloadOutcome, ReloadError> {
        let _serialize = self.reload.lock().unwrap();
        let hash = content_hash(bytes);
        let serving = self.current();
        if serving.hash == hash {
            return Ok(ReloadOutcome::Unchanged {
                epoch: serving.epoch,
                hash,
            });
        }

        let cached = self.cache.lock().unwrap().get(&hash).cloned();
        let (mdes, cache_hit) = match cached {
            Some(mdes) => (mdes, true),
            None => {
                let mdes = compile_source(bytes, self.seed)?;
                let mut cache = self.cache.lock().unwrap();
                if cache.len() >= MAX_CACHED_IMAGES {
                    cache.clear();
                }
                cache.insert(hash, Arc::clone(&mdes));
                (mdes, false)
            }
        };

        let image = Arc::new(ServeImage {
            mdes,
            epoch: serving.epoch + 1,
            hash,
            origin: origin.to_string(),
        });
        *self.current.lock().unwrap() = Arc::clone(&image);
        Ok(ReloadOutcome::Promoted { image, cache_hit })
    }

    /// Reads `path` and reloads from its contents.
    pub fn reload_path(&self, path: &str) -> Result<ReloadOutcome, ReloadError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ReloadError::Io(format!("cannot read `{path}`: {e}")))?;
        self.reload_bytes(&bytes, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_guard::{corrupt_image, ImageFault};
    use mdes_machines::Machine;

    fn store(machine: Machine) -> ImageStore {
        let mdes = CompiledMdes::compile(&machine.spec(), UsageEncoding::BitVector).unwrap();
        ImageStore::new(Arc::new(mdes), machine.name(), 11)
    }

    fn image_of(machine: Machine) -> Vec<u8> {
        lmdes::write(&CompiledMdes::compile(&machine.spec(), UsageEncoding::BitVector).unwrap())
    }

    #[test]
    fn identical_bytes_are_a_no_op() {
        let store = store(Machine::K5);
        let outcome = store.reload_bytes(&image_of(Machine::K5), "same").unwrap();
        assert!(matches!(outcome, ReloadOutcome::Unchanged { epoch: 0, .. }));
        assert_eq!(store.current().epoch, 0);
    }

    #[test]
    fn promotion_bumps_the_epoch_and_swaps_the_description() {
        let store = store(Machine::K5);
        let before = store.current();
        let outcome = store
            .reload_bytes(&image_of(Machine::Pentium), "pentium.lmdes")
            .unwrap();
        match outcome {
            ReloadOutcome::Promoted { image, cache_hit } => {
                assert!(!cache_hit);
                assert_eq!(image.epoch, 1);
                assert_ne!(image.hash, before.hash);
            }
            other => panic!("expected promotion, got {other:?}"),
        }
        assert_eq!(store.current().epoch, 1);
        // The pre-reload Arc still schedules: in-flight work is safe.
        assert!(!before.mdes.classes().is_empty());
    }

    #[test]
    fn reloading_previously_seen_bytes_hits_the_cache() {
        let store = store(Machine::K5);
        let pentium = image_of(Machine::Pentium);
        let k5 = image_of(Machine::K5);
        store.reload_bytes(&pentium, "p").unwrap();
        // Back to K5: the boot image is cached under its canonical hash.
        match store.reload_bytes(&k5, "k5").unwrap() {
            ReloadOutcome::Promoted { cache_hit, image } => {
                assert!(cache_hit);
                assert_eq!(image.epoch, 2);
            }
            other => panic!("expected promotion, got {other:?}"),
        }
        // And forward again: pentium was cached by the first reload.
        match store.reload_bytes(&pentium, "p").unwrap() {
            ReloadOutcome::Promoted { cache_hit, .. } => assert!(cache_hit),
            other => panic!("expected promotion, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_images_are_rejected_and_the_old_image_keeps_serving() {
        let store = store(Machine::Pa7100);
        let before = store.current();
        let good = image_of(Machine::Pentium);
        for fault in ImageFault::fatal() {
            for seed in 0..4 {
                let bad = corrupt_image(&good, fault, seed);
                let err = store.reload_bytes(&bad, "bad").unwrap_err();
                assert!(
                    matches!(err.code(), ErrorCode::Parse | ErrorCode::Validation),
                    "{fault}: unexpected code for {err:?}"
                );
            }
        }
        let after = store.current();
        assert_eq!(after.epoch, before.epoch);
        assert_eq!(after.hash, before.hash);
    }

    #[test]
    fn fatal_diagnostic_reloads_are_rejected_with_no_swap() {
        let store = store(Machine::K5);
        let before = store.current();

        // HMDL that parses, validates, and can provably never schedule:
        // both AND branches demand ALU@0 (MD001).
        let unsat = "
            resource ALU;
            or_tree A = first_of({ ALU @ 0 });
            or_tree B = first_of({ ALU @ 0 });
            and_or_tree Both = all_of(A, B);
            class stuck { constraint = Both; }
        ";
        let err = store
            .reload_bytes(unsat.as_bytes(), "unsat.hmdl")
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::Validation, "{err:?}");
        assert!(err.message().contains("MD001"), "{err:?}");
        assert!(err.message().contains("line"), "span missing: {err:?}");

        // An LMDES image with trailing garbage: triaged as MD105 before
        // the decoder even runs.
        let mut tail = image_of(Machine::Pentium);
        tail.extend_from_slice(b"junk");
        let err = store.reload_bytes(&tail, "tail.lmdes").unwrap_err();
        assert_eq!(err.code(), ErrorCode::Parse, "{err:?}");
        assert!(err.message().contains("MD105"), "{err:?}");

        // No swap happened: the boot image keeps serving.
        let after = store.current();
        assert_eq!(after.epoch, before.epoch);
        assert_eq!(after.hash, before.hash);
    }

    #[test]
    fn hmdl_source_reloads_through_the_guarded_pipeline() {
        let store = store(Machine::K5);
        let source = "
            resource Dec[2];
            or_tree AnyDec = first_of({ Dec[0] @ 0 }, { Dec[1] @ 0 });
            class alu { constraint = AnyDec; }
        ";
        match store
            .reload_bytes(source.as_bytes(), "inline.hmdl")
            .unwrap()
        {
            ReloadOutcome::Promoted { image, .. } => {
                assert_eq!(image.epoch, 1);
                assert_eq!(image.mdes.classes().len(), 1);
            }
            other => panic!("expected promotion, got {other:?}"),
        }

        let err = store
            .reload_bytes(b"class oops { constraint = Nowhere; }", "broken.hmdl")
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::Parse);
        assert_eq!(store.current().epoch, 1);
    }
}
