//! `mdes-serve`: a fault-tolerant scheduling daemon.
//!
//! The paper's machine descriptions are *loaded* artifacts: the compiler
//! reads a customized LMDES image at start-up "to minimize the time
//! required to load the MDES into memory" (Section 4).  This crate takes
//! that idea to its operational conclusion — a long-running daemon that
//! holds one or more compiled descriptions in memory (a **shard** per
//! machine, routed by the request's `machine` field), schedules request
//! workloads against them over a line-delimited JSON protocol with
//! **pipelined** connections (protocol v2: an optional per-request `id`
//! echoed in the reply lets a client keep many requests in flight and
//! accept out-of-order completion; id-less v1 clients keep strict
//! serial FIFO, byte-compatibly), and **hot-reloads** new descriptions
//! per shard without dropping a single in-flight request.
//!
//! The pieces:
//!
//! * [`proto`] — the wire codec (request `id` echo, `machine` shard
//!   routing) and the error-code ladder (1–5 mirror the CLI exit
//!   codes; 6 `overload`, 7 `panic` extend it).
//! * [`queue`] — the bounded admission queue: shed-on-full backpressure
//!   and drain-on-close shutdown.
//! * [`image`] — the epoch-handoff image store: content-hashed compile
//!   cache, guard-vetted promotion, rollback-by-not-swapping.
//! * [`server`] — listeners (Unix socket or TCP), per-connection
//!   framing with slow-loris defense, pipelined dispatch across the
//!   shard set, the worker pool with per-request deadlines and panic
//!   isolation, and the global plus per-shard `serve/*` statistics.
//! * [`client`] — the closed-loop load client (serial v1 or windowed
//!   pipelined v2, optionally spraying requests across shards) that
//!   doubles as the chaos harness's correctness oracle, plus the bench
//!   flag parser shared with `mdesc bench-serve`.
//!
//! ## Invariants (enforced by the test suites in `crates/serve/tests`)
//!
//! * Every admitted request is answered, even across shutdown.
//! * A request is served by the image current at its admission; hot
//!   reloads never change an admitted request's answer.
//! * A rejected reload (corrupt image, failed vetting, oracle incident)
//!   leaves the previous image serving — on that shard alone; sibling
//!   shards are never perturbed by another shard's reload, shed, or
//!   deadline pressure.
//! * Pipelined replies may complete out of order, but every reply
//!   carries the `id` of the request it answers, and an id-less (v1)
//!   connection observes strict request-order replies.
//! * A panicking job answers `panic` for itself and nothing else.
//! * Malformed, oversized, or stalled frames never take the daemon down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod image;
pub mod proto;
pub mod queue;
pub mod server;

pub use client::{run_load, BenchFlags, ClientReport, LoadOptions, ReloadEvent};
pub use image::{
    compile_machine, compile_source, content_hash, ImageStore, ReloadError, ReloadOutcome,
    ServeImage,
};
pub use proto::{ErrorCode, Frame, Reply, Request, WorkParams, MAX_FRAME};
pub use queue::{AdmissionQueue, PushError};
pub use server::{serve, serve_sharded, BindAddr, ServeConfig, ServeStats, ServerHandle, Shard};
