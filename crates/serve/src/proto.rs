//! The wire protocol: line-delimited JSON frames.
//!
//! Every request is one JSON object on one `\n`-terminated line; every
//! response is likewise one line.  The codec is pure (no I/O) so the
//! framing, limits, and error mapping are unit-testable without a
//! socket.
//!
//! ## Requests
//!
//! ```json
//! {"id": 1, "verb": "schedule", "regions": 8, "mean_ops": 8, "seed": 3}
//! {"id": 2, "verb": "verify",   "regions": 4, "seed": 9, "deadline_ms": 50}
//! {"id": 3, "verb": "query",    "machine": "pentium"}
//! {"id": 4, "verb": "stats"}
//! {"id": 5, "verb": "reload", "path": "/path/to/new.lmdes"}
//! {"id": 6, "verb": "shutdown"}
//! ```
//!
//! ## Responses
//!
//! ```json
//! {"id": 1, "ok": true, "result": {...}}
//! {"id": 2, "ok": false,
//!  "error": {"code": "overload", "num": 6, "message": "...", "retry_after_ms": 25}}
//! ```
//!
//! ## Protocol v2: pipelining and shard routing
//!
//! Both additions are optional fields, so every v1 frame is a valid v2
//! frame with identical semantics:
//!
//! * **`id`** — when present on a work verb, the connection may carry
//!   many requests in flight; replies are written as jobs finish,
//!   possibly out of admission order, each echoing its request's `id`.
//!   A frame *without* `id` keeps the v1 contract: the daemon answers
//!   it (echoing `"id":0`) before reading the connection's next frame,
//!   so id-less clients observe strict serial FIFO behavior,
//!   byte-identical to v1.
//! * **`machine`** — routes the request to one shard of a multi-machine
//!   daemon.  Absent, the boot (default) shard handles it, which is the
//!   whole daemon when serving a single machine — exactly v1.  Naming a
//!   machine the daemon does not serve is a `parse` error.
//!
//! ## Error-code contract
//!
//! Codes 1–5 mirror the CLI's exit codes (general, parse, validation,
//! oracle, perf); the daemon extends the same ladder with serving-only
//! conditions:
//!
//! | num | code         | meaning                                          |
//! |-----|--------------|--------------------------------------------------|
//! | 1   | `general`    | unknown verb, internal error                     |
//! | 2   | `parse`      | malformed JSON, oversized frame, bad field       |
//! | 3   | `validation` | reload rejected by structural validation/vetting |
//! | 4   | `oracle`     | reload rejected by the differential oracle       |
//! | 5   | `deadline`   | per-request deadline expired before execution    |
//! | 6   | `overload`   | admission queue full — shed, retry later         |
//! | 7   | `panic`      | the request's job panicked (isolated)            |

use std::collections::BTreeMap;

use mdes_telemetry::json::Json;

/// Hard cap on one request line, newline included.  A frame that grows
/// past this without a newline is rejected with a `parse` error and the
/// connection is dropped (there is no way to resynchronize).
pub const MAX_FRAME: usize = 64 * 1024;

/// Upper bounds on per-request work, so one request cannot monopolize
/// the daemon.  Violations are `parse` errors (the request is
/// malformed by contract, not rejected by load).
pub const MAX_REGIONS: usize = 4096;
/// See [`MAX_REGIONS`].
pub const MAX_MEAN_OPS: usize = 256;
/// See [`MAX_REGIONS`].
pub const MAX_JOBS: usize = 64;

/// Protocol error codes; `num` 1–5 match the CLI exit-code contract.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Unknown verb or internal error.
    General,
    /// Malformed frame or field.
    Parse,
    /// Reload rejected by validation/vetting.
    Validation,
    /// Reload rejected by the differential oracle.
    Oracle,
    /// Deadline expired before the job started.
    Deadline,
    /// Admission queue full; request shed.
    Overload,
    /// The job panicked; the panic was isolated.
    Panic,
}

impl ErrorCode {
    /// Stable numeric code (1–5 match CLI exit codes).
    pub fn num(self) -> u64 {
        match self {
            ErrorCode::General => 1,
            ErrorCode::Parse => 2,
            ErrorCode::Validation => 3,
            ErrorCode::Oracle => 4,
            ErrorCode::Deadline => 5,
            ErrorCode::Overload => 6,
            ErrorCode::Panic => 7,
        }
    }

    /// Stable string code.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::General => "general",
            ErrorCode::Parse => "parse",
            ErrorCode::Validation => "validation",
            ErrorCode::Oracle => "oracle",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Overload => "overload",
            ErrorCode::Panic => "panic",
        }
    }
}

/// Parameters of a `schedule`/`verify` request: the workload is derived
/// deterministically from these on the daemon side, so a client that
/// knows the serving description can independently predict the answer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WorkParams {
    /// Regions to generate and schedule.
    pub regions: usize,
    /// Mean operations per region.
    pub mean_ops: usize,
    /// Workload seed.
    pub seed: u64,
    /// Engine workers for this request.
    pub jobs: usize,
}

impl Default for WorkParams {
    fn default() -> WorkParams {
        WorkParams {
            regions: 4,
            mean_ops: 8,
            seed: 1,
            jobs: 1,
        }
    }
}

/// One decoded request verb.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Generate and schedule a seeded region stream; reply with folded
    /// schedule statistics.
    Schedule {
        /// Workload shape.
        params: WorkParams,
        /// Optional per-request deadline, milliseconds from admission.
        deadline_ms: Option<u64>,
    },
    /// Like `schedule`, but additionally re-verify every schedule
    /// against its dependence graph before answering.
    Verify {
        /// Workload shape.
        params: WorkParams,
        /// Optional per-request deadline, milliseconds from admission.
        deadline_ms: Option<u64>,
    },
    /// Describe the serving description (epoch, hash, shape).
    Query,
    /// Report server counters and latency percentiles.
    Stats,
    /// Load, vet, and promote a new description from `path`.
    Reload {
        /// Filesystem path of an LMDES image or HMDL source.
        path: String,
    },
    /// Drain and exit cleanly.
    Shutdown,
    /// Chaos-mode only: panic inside the job to prove isolation.
    Poison,
}

/// One decoded frame: the request plus its client-chosen correlation id
/// and shard routing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Correlation id echoed into the response.  `None` marks a v1-style
    /// serial request: the reply echoes `0` and is written before the
    /// connection's next frame is read.  `Some(id)` opts the request
    /// into pipelined completion routing.
    pub id: Option<u64>,
    /// Shard routing: the machine this request targets, or `None` for
    /// the daemon's default (boot) shard.
    pub machine: Option<String>,
    /// The decoded verb.
    pub request: Request,
}

impl Frame {
    /// The id echoed into this frame's reply (`0` when the request
    /// carried none, matching v1 responses byte for byte).
    pub fn reply_id(&self) -> u64 {
        self.id.unwrap_or(0)
    }
}

/// A protocol-level rejection: carries the id when one was recoverable
/// from the broken frame so the client can still correlate the error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Correlation id, when recoverable.
    pub id: u64,
    /// Error class.
    pub code: ErrorCode,
    /// Human-readable reason.
    pub message: String,
}

impl WireError {
    fn parse(id: u64, message: impl Into<String>) -> WireError {
        WireError {
            id,
            code: ErrorCode::Parse,
            message: message.into(),
        }
    }
}

fn field_usize(
    obj: &Json,
    key: &str,
    default: usize,
    max: usize,
    id: u64,
) -> Result<usize, WireError> {
    match obj.get(key) {
        None => Ok(default),
        Some(value) => {
            let n = value
                .as_u64()
                .ok_or_else(|| WireError::parse(id, format!("`{key}` must be an integer")))?;
            let n = usize::try_from(n)
                .map_err(|_| WireError::parse(id, format!("`{key}` out of range")))?;
            if n < 1 || n > max {
                return Err(WireError::parse(
                    id,
                    format!("`{key}` must be between 1 and {max}"),
                ));
            }
            Ok(n)
        }
    }
}

/// Decodes one request line.  On error the returned [`WireError`]
/// carries the id when the frame was well-formed enough to recover it.
pub fn parse_frame(line: &str) -> Result<Frame, WireError> {
    if line.len() > MAX_FRAME {
        return Err(WireError::parse(0, "frame exceeds maximum size"));
    }
    let json = Json::parse(line).map_err(|e| WireError::parse(0, format!("bad JSON: {e}")))?;
    if json.as_obj().is_none() {
        return Err(WireError::parse(0, "frame must be a JSON object"));
    }
    let frame_id = json.get("id").and_then(Json::as_u64);
    let id = frame_id.unwrap_or(0);
    let machine = match json.get("machine") {
        None => None,
        Some(value) => Some(
            value
                .as_str()
                .ok_or_else(|| WireError::parse(id, "`machine` must be a string"))?
                .to_string(),
        ),
    };
    let verb = json
        .get("verb")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::parse(id, "missing `verb`"))?;

    let work_params = |json: &Json| -> Result<WorkParams, WireError> {
        let defaults = WorkParams::default();
        Ok(WorkParams {
            regions: field_usize(json, "regions", defaults.regions, MAX_REGIONS, id)?,
            mean_ops: field_usize(json, "mean_ops", defaults.mean_ops, MAX_MEAN_OPS, id)?,
            jobs: field_usize(json, "jobs", defaults.jobs, MAX_JOBS, id)?,
            seed: match json.get("seed") {
                None => defaults.seed,
                Some(value) => value
                    .as_u64()
                    .ok_or_else(|| WireError::parse(id, "`seed` must be an integer"))?,
            },
        })
    };
    let deadline = |json: &Json| -> Result<Option<u64>, WireError> {
        match json.get("deadline_ms") {
            None => Ok(None),
            Some(value) => value
                .as_u64()
                .map(Some)
                .ok_or_else(|| WireError::parse(id, "`deadline_ms` must be an integer")),
        }
    };

    let request = match verb {
        "schedule" => Request::Schedule {
            params: work_params(&json)?,
            deadline_ms: deadline(&json)?,
        },
        "verify" => Request::Verify {
            params: work_params(&json)?,
            deadline_ms: deadline(&json)?,
        },
        "query" => Request::Query,
        "stats" => Request::Stats,
        "reload" => Request::Reload {
            path: json
                .get("path")
                .and_then(Json::as_str)
                .ok_or_else(|| WireError::parse(id, "`reload` requires a string `path`"))?
                .to_string(),
        },
        "shutdown" => Request::Shutdown,
        "poison" => Request::Poison,
        other => {
            return Err(WireError {
                id,
                code: ErrorCode::General,
                message: format!("unknown verb `{other}`"),
            })
        }
    };
    Ok(Frame {
        id: frame_id,
        machine,
        request,
    })
}

/// Renders a success response line (newline included).
pub fn ok_response(id: u64, result: Json) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("id".to_string(), Json::Num(id as f64));
    obj.insert("ok".to_string(), Json::Bool(true));
    obj.insert("result".to_string(), result);
    let mut line = Json::Obj(obj).render();
    line.push('\n');
    line
}

/// Renders an error response line (newline included).
pub fn err_response(
    id: u64,
    code: ErrorCode,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let mut error = BTreeMap::new();
    error.insert("code".to_string(), Json::Str(code.name().to_string()));
    error.insert("num".to_string(), Json::Num(code.num() as f64));
    error.insert("message".to_string(), Json::Str(message.to_string()));
    if let Some(ms) = retry_after_ms {
        error.insert("retry_after_ms".to_string(), Json::Num(ms as f64));
    }
    let mut obj = BTreeMap::new();
    obj.insert("id".to_string(), Json::Num(id as f64));
    obj.insert("ok".to_string(), Json::Bool(false));
    obj.insert("error".to_string(), Json::Obj(error));
    let mut line = Json::Obj(obj).render();
    line.push('\n');
    line
}

/// Convenience for building `result` objects.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// One decoded response, as seen by a client.
#[derive(Clone, Debug, PartialEq)]
pub struct Reply {
    /// Echoed correlation id.
    pub id: u64,
    /// Success flag.
    pub ok: bool,
    /// The whole response object (`result` / `error` live inside).
    pub body: Json,
}

impl Reply {
    /// The error code of a failure reply, if present.
    pub fn error_num(&self) -> Option<u64> {
        self.body
            .get("error")
            .and_then(|e| e.get("num"))
            .and_then(Json::as_u64)
    }

    /// The shed-backoff hint of an `overload` reply, if present.
    pub fn retry_after_ms(&self) -> Option<u64> {
        self.body
            .get("error")
            .and_then(|e| e.get("retry_after_ms"))
            .and_then(Json::as_u64)
    }

    /// A numeric field of the `result` object.
    pub fn result_u64(&self, key: &str) -> Option<u64> {
        self.body
            .get("result")
            .and_then(|r| r.get(key))
            .and_then(Json::as_u64)
    }
}

/// Decodes one response line.
pub fn parse_reply(line: &str) -> Result<Reply, String> {
    let body = Json::parse(line)?;
    let id = body
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("reply missing `id`")?;
    let ok = match body.get("ok") {
        Some(Json::Bool(ok)) => *ok,
        _ => return Err("reply missing `ok`".to_string()),
    };
    Ok(Reply { id, ok, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_frames_parse_with_defaults_and_overrides() {
        let frame = parse_frame(r#"{"id": 7, "verb": "schedule"}"#).unwrap();
        assert_eq!(frame.id, Some(7));
        assert_eq!(frame.reply_id(), 7);
        assert_eq!(frame.machine, None);
        assert_eq!(
            frame.request,
            Request::Schedule {
                params: WorkParams::default(),
                deadline_ms: None
            }
        );

        let frame = parse_frame(
            r#"{"id": 8, "verb": "verify", "regions": 64, "mean_ops": 5,
                "seed": 99, "jobs": 2, "deadline_ms": 250}"#,
        )
        .unwrap();
        assert_eq!(
            frame.request,
            Request::Verify {
                params: WorkParams {
                    regions: 64,
                    mean_ops: 5,
                    seed: 99,
                    jobs: 2
                },
                deadline_ms: Some(250),
            }
        );
    }

    #[test]
    fn idless_frames_are_v1_serial_and_echo_zero() {
        // A frame without `id` must parse to `id: None` (the serial
        // marker) but reply with `"id":0` — the exact v1 bytes.
        let frame = parse_frame(r#"{"verb": "schedule"}"#).unwrap();
        assert_eq!(frame.id, None);
        assert_eq!(frame.reply_id(), 0);
        let line = ok_response(frame.reply_id(), obj(vec![]));
        assert!(line.starts_with(r#"{"id":0,"#), "{line}");
    }

    #[test]
    fn machine_field_routes_and_rejects_non_strings() {
        let frame = parse_frame(r#"{"verb": "query", "machine": "pentium"}"#).unwrap();
        assert_eq!(frame.machine.as_deref(), Some("pentium"));
        let frame =
            parse_frame(r#"{"id": 2, "verb": "reload", "path": "x", "machine": "k5"}"#).unwrap();
        assert_eq!(frame.machine.as_deref(), Some("k5"));
        assert_eq!(frame.id, Some(2));

        let err = parse_frame(r#"{"id": 9, "verb": "query", "machine": 3}"#).unwrap_err();
        assert_eq!((err.id, err.code), (9, ErrorCode::Parse));
    }

    #[test]
    fn malformed_frames_are_parse_errors_with_recovered_ids() {
        let err = parse_frame("not json at all").unwrap_err();
        assert_eq!(err.code, ErrorCode::Parse);

        let err = parse_frame(r#"{"id": 3, "regions": 1}"#).unwrap_err();
        assert_eq!((err.id, err.code), (3, ErrorCode::Parse));

        let err = parse_frame(r#"{"id": 4, "verb": "schedule", "regions": 0}"#).unwrap_err();
        assert_eq!((err.id, err.code), (4, ErrorCode::Parse));

        let err = parse_frame(r#"{"id": 5, "verb": "warp"}"#).unwrap_err();
        assert_eq!((err.id, err.code), (5, ErrorCode::General));

        let big = format!(
            r#"{{"verb": "schedule", "pad": "{}"}}"#,
            "x".repeat(MAX_FRAME)
        );
        assert_eq!(parse_frame(&big).unwrap_err().code, ErrorCode::Parse);
    }

    #[test]
    fn work_limits_are_enforced() {
        let line = format!(r#"{{"verb": "schedule", "regions": {}}}"#, MAX_REGIONS + 1);
        assert_eq!(parse_frame(&line).unwrap_err().code, ErrorCode::Parse);
        let line = format!(r#"{{"verb": "schedule", "jobs": {}}}"#, MAX_JOBS + 1);
        assert_eq!(parse_frame(&line).unwrap_err().code, ErrorCode::Parse);
    }

    #[test]
    fn responses_round_trip_through_the_client_decoder() {
        let line = ok_response(12, obj(vec![("cycles", Json::Num(42.0))]));
        let reply = parse_reply(line.trim_end()).unwrap();
        assert!(reply.ok);
        assert_eq!(reply.id, 12);
        assert_eq!(reply.result_u64("cycles"), Some(42));

        let line = err_response(13, ErrorCode::Overload, "queue full", Some(25));
        let reply = parse_reply(line.trim_end()).unwrap();
        assert!(!reply.ok);
        assert_eq!(reply.error_num(), Some(6));
        assert_eq!(reply.retry_after_ms(), Some(25));
    }

    #[test]
    fn exit_code_ladder_matches_the_cli_contract() {
        assert_eq!(ErrorCode::General.num(), 1);
        assert_eq!(ErrorCode::Parse.num(), 2);
        assert_eq!(ErrorCode::Validation.num(), 3);
        assert_eq!(ErrorCode::Oracle.num(), 4);
        assert_eq!(ErrorCode::Deadline.num(), 5);
        assert_eq!(ErrorCode::Overload.num(), 6);
        assert_eq!(ErrorCode::Panic.num(), 7);
    }
}
