//! The engine's determinism contract: worker count must be invisible in
//! the results. Same seed, `--jobs 1` vs `--jobs 8` vs `--jobs 16`
//! produce byte-identical schedules and identical folded `CheckStats`
//! counters — under the chunked work-stealing queue, whatever got stolen
//! by whom.

use std::sync::Arc;

use mdes_core::{CompiledMdes, UsageEncoding};
use mdes_engine::Engine;
use mdes_machines::Machine;
use mdes_workload::{generate_regions, RegionConfig};

#[test]
fn one_eight_and_sixteen_workers_produce_byte_identical_results() {
    for machine in [Machine::Pa7100, Machine::K5] {
        let mut spec = machine.spec();
        mdes_opt::optimize(&mut spec, &mdes_opt::PipelineConfig::full());
        let compiled = Arc::new(CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap());
        let config = RegionConfig::new(256).with_seed(0xDE7);
        let workload = generate_regions(&spec, &config);

        let engine = Engine::new(compiled);
        let one = engine.schedule_batch(&workload.blocks, 1);
        for jobs in [8, 16] {
            let wide = engine.schedule_batch(&workload.blocks, jobs);
            assert!(one.is_clean() && wide.is_clean());
            assert_eq!(wide.workers.len(), jobs, "{}", machine.name());

            // Schedules are structurally equal and byte-identical once
            // rendered; folded counters (including the Figure-2
            // histogram) match exactly.
            assert_eq!(one.schedules, wide.schedules, "{} w{jobs}", machine.name());
            assert_eq!(
                format!("{:?}", one.schedules),
                format!("{:?}", wide.schedules),
                "{} w{jobs}",
                machine.name()
            );
            assert_eq!(one.stats, wide.stats, "{} w{jobs}", machine.name());

            // And re-running the same batch reproduces itself.
            let again = engine.schedule_batch(&workload.blocks, jobs);
            assert_eq!(again.schedules, wide.schedules);
            assert_eq!(again.stats, wide.stats);
        }
    }
}

#[test]
fn a_skewed_workload_is_stolen_without_breaking_the_fold() {
    // One giant region buried at the front of a batch of tiny ones: the
    // worker that claims the first chunk is stuck scheduling the giant
    // block while the tiny jobs parked behind it in the same chunk can
    // only be run by other workers stealing them. The batch must still be
    // byte-identical to the single-worker run — stealing moves work, not
    // results.
    let machine = Machine::Pa7100;
    let spec = machine.spec();
    let compiled = Arc::new(CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap());

    let giant = generate_regions(
        &spec,
        &RegionConfig::new(1).with_mean_ops(4096).with_seed(77),
    );
    let tiny = generate_regions(
        &spec,
        &RegionConfig::new(255).with_mean_ops(4).with_seed(78),
    );
    let mut blocks = giant.blocks;
    blocks.extend(tiny.blocks);

    let engine = Engine::new(compiled);
    let serial = engine.schedule_batch(&blocks, 1);
    assert!(serial.is_clean());

    for jobs in [4, 16] {
        let outcome = engine.schedule_batch(&blocks, jobs);
        assert!(outcome.is_clean(), "{jobs} workers");
        assert_eq!(outcome.schedules, serial.schedules, "{jobs} workers");
        assert_eq!(outcome.stats, serial.stats, "{jobs} workers");
        // The giant job pins its worker for far longer than the rest of
        // the batch takes, so the tiny jobs parked in its chunk must have
        // been stolen for the batch to complete — and the fold above
        // proves the steals changed nothing.
        assert!(
            outcome.steals() >= 1,
            "{jobs} workers: expected the blocked chunk's tail to be stolen"
        );
    }
}

#[test]
fn hinted_engine_is_deterministic_and_schedules_stay_valid() {
    // Hint-first option ordering keeps hint state inside each job's
    // scheduling run, so worker count must stay invisible — and every
    // hinted schedule must still verify against the description.
    for machine in [Machine::Pa7100, Machine::K5] {
        let spec = machine.spec();
        let compiled = Arc::new(CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap());
        let workload = generate_regions(&spec, &RegionConfig::new(128).with_seed(0x41D));
        let engine = Engine::new(compiled.clone()).with_hints(true);

        let one = engine.schedule_batch(&workload.blocks, 1);
        let four = engine.schedule_batch(&workload.blocks, 4);
        assert!(one.is_clean() && four.is_clean());
        assert_eq!(one.schedules, four.schedules, "{}", machine.name());
        assert_eq!(one.stats, four.stats, "{}", machine.name());

        for (schedule, block) in one.schedules.iter().zip(&workload.blocks) {
            let graph = mdes_sched::DepGraph::build(block, &compiled);
            schedule
                .as_ref()
                .unwrap()
                .verify(&graph, &compiled)
                .unwrap_or_else(|e| panic!("{}: hinted schedule invalid: {e}", machine.name()));
        }

        // And re-running a hinted batch reproduces itself.
        let again = engine.schedule_batch(&workload.blocks, 4);
        assert_eq!(again.schedules, four.schedules, "{}", machine.name());
        assert_eq!(again.stats, four.stats, "{}", machine.name());
    }
}

#[test]
fn worker_assignment_never_leaks_into_the_fold() {
    // The per-worker splits differ run to run (first-come first-served
    // queue), but their fold is pinned to the jobs-order total.
    let machine = Machine::SuperSparc;
    let spec = machine.spec();
    let compiled = Arc::new(CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap());
    let workload = generate_regions(&spec, &RegionConfig::new(128).with_seed(5));
    let engine = Engine::new(compiled);

    let reference = engine.schedule_batch(&workload.blocks, 1).stats;
    for jobs in [2, 3, 5, 8] {
        let outcome = engine.schedule_batch(&workload.blocks, jobs);
        assert_eq!(outcome.stats, reference, "{jobs} workers");
        let mut folded = mdes_core::CheckStats::new();
        for worker in &outcome.workers {
            folded.merge(&worker.stats);
        }
        assert_eq!(folded, reference, "{jobs} workers (per-worker fold)");
    }
}
