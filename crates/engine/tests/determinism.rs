//! The engine's determinism contract: worker count must be invisible in
//! the results. Same seed, `--jobs 1` vs `--jobs 8` produce byte-identical
//! schedules and identical folded `CheckStats` counters.

use std::sync::Arc;

use mdes_core::{CompiledMdes, UsageEncoding};
use mdes_engine::Engine;
use mdes_machines::Machine;
use mdes_workload::{generate_regions, RegionConfig};

#[test]
fn one_and_eight_workers_produce_byte_identical_results() {
    for machine in [Machine::Pa7100, Machine::K5] {
        let mut spec = machine.spec();
        mdes_opt::optimize(&mut spec, &mdes_opt::PipelineConfig::full());
        let compiled = Arc::new(CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap());
        let config = RegionConfig::new(256).with_seed(0xDE7);
        let workload = generate_regions(&spec, &config);

        let engine = Engine::new(compiled);
        let one = engine.schedule_batch(&workload.blocks, 1);
        let eight = engine.schedule_batch(&workload.blocks, 8);
        assert!(one.is_clean() && eight.is_clean());
        assert_eq!(eight.workers.len(), 8, "{}", machine.name());

        // Schedules are structurally equal and byte-identical once
        // rendered; folded counters (including the Figure-2 histogram)
        // match exactly.
        assert_eq!(one.schedules, eight.schedules, "{}", machine.name());
        assert_eq!(
            format!("{:?}", one.schedules),
            format!("{:?}", eight.schedules),
            "{}",
            machine.name()
        );
        assert_eq!(one.stats, eight.stats, "{}", machine.name());

        // And re-running the same batch reproduces itself.
        let again = engine.schedule_batch(&workload.blocks, 8);
        assert_eq!(again.schedules, eight.schedules);
        assert_eq!(again.stats, eight.stats);
    }
}

#[test]
fn hinted_engine_is_deterministic_and_schedules_stay_valid() {
    // Hint-first option ordering keeps hint state inside each job's
    // scheduling run, so worker count must stay invisible — and every
    // hinted schedule must still verify against the description.
    for machine in [Machine::Pa7100, Machine::K5] {
        let spec = machine.spec();
        let compiled = Arc::new(CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap());
        let workload = generate_regions(&spec, &RegionConfig::new(128).with_seed(0x41D));
        let engine = Engine::new(compiled.clone()).with_hints(true);

        let one = engine.schedule_batch(&workload.blocks, 1);
        let four = engine.schedule_batch(&workload.blocks, 4);
        assert!(one.is_clean() && four.is_clean());
        assert_eq!(one.schedules, four.schedules, "{}", machine.name());
        assert_eq!(one.stats, four.stats, "{}", machine.name());

        for (schedule, block) in one.schedules.iter().zip(&workload.blocks) {
            let graph = mdes_sched::DepGraph::build(block, &compiled);
            schedule
                .as_ref()
                .unwrap()
                .verify(&graph, &compiled)
                .unwrap_or_else(|e| panic!("{}: hinted schedule invalid: {e}", machine.name()));
        }

        // And re-running a hinted batch reproduces itself.
        let again = engine.schedule_batch(&workload.blocks, 4);
        assert_eq!(again.schedules, four.schedules, "{}", machine.name());
        assert_eq!(again.stats, four.stats, "{}", machine.name());
    }
}

#[test]
fn worker_assignment_never_leaks_into_the_fold() {
    // The per-worker splits differ run to run (first-come first-served
    // queue), but their fold is pinned to the jobs-order total.
    let machine = Machine::SuperSparc;
    let spec = machine.spec();
    let compiled = Arc::new(CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap());
    let workload = generate_regions(&spec, &RegionConfig::new(128).with_seed(5));
    let engine = Engine::new(compiled);

    let reference = engine.schedule_batch(&workload.blocks, 1).stats;
    for jobs in [2, 3, 5, 8] {
        let outcome = engine.schedule_batch(&workload.blocks, jobs);
        assert_eq!(outcome.stats, reference, "{jobs} workers");
        let mut folded = mdes_core::CheckStats::new();
        for worker in &outcome.workers {
            folded.merge(&worker.stats);
        }
        assert_eq!(folded, reference, "{jobs} workers (per-worker fold)");
    }
}
