//! The cross-implementation conformance suite: the naive per-usage
//! (scalar) checker, the packed bit-vector checker, and the automata
//! baseline must agree on accept/reject — and the two table checkers on
//! the chosen options — for randomized machines × probe streams.
//!
//! This is the backbone that makes hot-path rewrites safe: any future
//! reimplementation of the check/reserve inner loop has to survive the
//! same seeded differential harness. The automaton cannot report chosen
//! options (it interns whole occupancy windows, Section 10), so the
//! option-level agreement applies to the two table encodings only.

use std::sync::Arc;

use mdes_core::{
    CheckStats, Checker, ClassId, CompiledMdes, Constraint, Latency, MdesSpec, OpFlags, OrTree,
    ResourceUsage, RuMap, TableOption, UsageEncoding,
};
use mdes_engine::Engine;
use mdes_sched::ListScheduler;
use mdes_workload::Pcg32;

use mdes_automata::Automaton;

/// Builds a random machine: 1–3 resource groups of 1–3 members, 1–3
/// classes of 1–3 options, each option 1–2 distinct usages at times
/// -2..=3. Usages are deduplicated per option so every generated spec
/// validates.
fn random_spec(rng: &mut Pcg32) -> MdesSpec {
    let mut spec = MdesSpec::new();
    let mut resources = Vec::new();
    for group in 0..1 + rng.gen_range(3) {
        for member in 0..1 + rng.gen_range(3) {
            resources.push(
                spec.resources_mut()
                    .add(format!("R{group}_{member}"))
                    .unwrap(),
            );
        }
    }
    for class in 0..1 + rng.gen_range(3) {
        let mut options = Vec::new();
        for _ in 0..1 + rng.gen_range(3) {
            let mut picked = std::collections::BTreeSet::new();
            for _ in 0..1 + rng.gen_range(2) {
                let resource = resources[rng.gen_range(resources.len() as u32) as usize];
                let time = rng.gen_range(6) as i32 - 2;
                picked.insert((time, resource));
            }
            let usages: Vec<ResourceUsage> = picked
                .into_iter()
                .map(|(time, resource)| ResourceUsage::new(resource, time))
                .collect();
            options.push(spec.add_option(TableOption::new(usages)));
        }
        let tree = spec.add_or_tree(OrTree::new(options));
        spec.add_class(
            format!("c{class}"),
            Constraint::Or(tree),
            Latency::new(1 + rng.gen_range(3) as i32),
            OpFlags::none(),
        )
        .unwrap();
    }
    spec
}

/// Drives all three implementations through one seeded probe stream and
/// returns how many issue probes were performed.
///
/// Every probe asserts scalar/bit-vector/automaton accept agreement; on
/// acceptance the two table checkers must additionally have chosen the
/// same options at the same time.
fn conform(spec: &MdesSpec, seed: u64, steps: usize) -> usize {
    let scalar = CompiledMdes::compile(spec, UsageEncoding::Scalar).unwrap();
    let bitvec = CompiledMdes::compile(spec, UsageEncoding::BitVector).unwrap();
    let scalar_checker = Checker::new(&scalar);
    let bitvec_checker = Checker::new(&bitvec);
    let mut fsa = Automaton::new(&bitvec);

    let classes: Vec<ClassId> = (0..scalar.classes().len())
        .map(ClassId::from_index)
        .collect();
    let mut scalar_ru = RuMap::new();
    let mut bitvec_ru = RuMap::new();
    let mut scalar_stats = CheckStats::new();
    let mut bitvec_stats = CheckStats::new();
    let mut rng = Pcg32::new(seed, 0xC0F);
    let mut state = Automaton::START;
    let mut cycle = 0i32;
    let mut probes = 0usize;

    for step in 0..steps {
        if rng.gen_range(4) == 0 {
            cycle += 1;
            state = fsa.advance(state);
            continue;
        }
        probes += 1;
        let class = classes[rng.gen_range(classes.len() as u32) as usize];
        let from_scalar =
            scalar_checker.try_reserve(&mut scalar_ru, class, cycle, &mut scalar_stats);
        let from_bitvec =
            bitvec_checker.try_reserve(&mut bitvec_ru, class, cycle, &mut bitvec_stats);
        let from_fsa = fsa.issue(state, class);
        assert_eq!(
            from_scalar.is_some(),
            from_bitvec.is_some(),
            "step {step}: scalar and bit-vector checkers disagree"
        );
        assert_eq!(
            from_bitvec.is_some(),
            from_fsa.is_some(),
            "step {step}: table checkers and automaton disagree"
        );
        match (from_scalar, from_bitvec) {
            (Some(scalar_choice), Some(bitvec_choice)) => {
                assert_eq!(
                    scalar_choice.selected, bitvec_choice.selected,
                    "step {step}: encodings chose different options"
                );
                assert_eq!(scalar_choice.time, bitvec_choice.time);
                assert_eq!(scalar_choice.class, bitvec_choice.class);
            }
            (None, None) => {}
            _ => unreachable!(),
        }
        if let Some(next) = from_fsa {
            state = next;
        }
    }
    // Both encodings must have walked to identical occupancy.
    for c in cycle - 8..=cycle + 8 {
        assert_eq!(
            scalar_ru.word(c),
            bitvec_ru.word(c),
            "occupancy differs at {c}"
        );
    }
    probes
}

#[test]
fn randomized_machines_agree_across_all_three_checkers() {
    // ≥ 10k probes: 96 machines × 160 steps ≈ 11.5k issue probes after
    // the ~25% advance steps.
    let mut probes = 0usize;
    for machine_seed in 0..96u64 {
        let mut rng = Pcg32::new(machine_seed, 0xA11CE);
        let spec = random_spec(&mut rng);
        probes += conform(&spec, machine_seed.wrapping_mul(0x9E37_79B9) + 1, 160);
    }
    assert!(
        probes >= 10_000,
        "only {probes} probes — weaken the suite and it stops being a backbone"
    );
}

#[test]
fn fleet_of_64_machines_agrees_across_all_three_checkers() {
    // The mass differential: 64 structurally-diverse synthetic machines
    // from the seeded fleet generator, ≥ 1k issue probes each.  Unlike
    // `random_spec` these cover interchangeable-unit groups, multi-cycle
    // staging options, AND/OR classes across disjoint groups, and
    // load/store/branch flags — the full shape range the bundled
    // machines span, at fleet scale.
    for (index, machine) in mdes_workload::fleet(0xF1EE7, 64).into_iter().enumerate() {
        let probes = conform(&machine.spec, 0x9E37 + index as u64, 1500);
        assert!(
            probes >= 1_000,
            "{}: only {probes} probes — the mass differential lost its mass",
            machine.name
        );
    }
}

/// Every bundled description: the four `Machine` variants plus the two
/// HMDL-only machines (pentiumpro, superspark_approx), per the ROADMAP
/// scenario-diversity item.
fn bundled_specs() -> Vec<MdesSpec> {
    let mut specs: Vec<MdesSpec> = mdes_machines::Machine::all()
        .into_iter()
        .map(|machine| machine.spec())
        .collect();
    specs.push(mdes_machines::pentium_pro());
    specs.push(mdes_machines::approximate_superspark());
    specs
}

#[test]
fn bundled_machines_agree_across_all_three_checkers() {
    for spec in bundled_specs() {
        conform(&spec, 41, 400);
        let mut optimized = spec.clone();
        mdes_opt::optimize(&mut optimized, &mdes_opt::PipelineConfig::full());
        conform(&optimized, 43, 400);
    }
}

#[test]
fn engine_batches_agree_with_serial_scheduling_on_random_machines() {
    // The engine is only a job pump: on random machines its batches must
    // reproduce the serial scheduler exactly, with the shared Arc'd
    // description served concurrently.
    for machine_seed in [3u64, 17, 59] {
        let mut rng = Pcg32::new(machine_seed, 0xBA7C4);
        let spec = random_spec(&mut rng);
        let compiled = Arc::new(CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap());
        let config = mdes_workload::RegionConfig::new(48).with_seed(machine_seed);
        let workload = mdes_workload::generate_regions(&spec, &config);

        let outcome = Engine::new(Arc::clone(&compiled)).schedule_batch(&workload.blocks, 4);
        assert!(outcome.is_clean());

        let scheduler = ListScheduler::new(&compiled);
        let mut serial_stats = CheckStats::new();
        for (block, got) in workload.blocks.iter().zip(&outcome.schedules) {
            let want = scheduler.schedule(block, &mut serial_stats);
            assert_eq!(got.as_ref().unwrap(), &want);
        }
        assert_eq!(outcome.stats, serial_stats);
    }
}

#[test]
fn engine_batches_agree_with_serial_scheduling_on_bundled_machines() {
    // Same contract on every bundled description: the concurrent engine
    // must be byte-identical to the serial scheduler, regardless of MDES
    // shape (rigid early machines through flexible late ones).
    for (i, spec) in bundled_specs().into_iter().enumerate() {
        let compiled = Arc::new(CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap());
        let config = mdes_workload::RegionConfig::new(24).with_seed(0x5EED + i as u64);
        let workload = mdes_workload::generate_regions(&spec, &config);

        let outcome = Engine::new(Arc::clone(&compiled)).schedule_batch(&workload.blocks, 4);
        assert!(outcome.is_clean());

        let scheduler = ListScheduler::new(&compiled);
        let mut serial_stats = CheckStats::new();
        for (block, got) in workload.blocks.iter().zip(&outcome.schedules) {
            let want = scheduler.schedule(block, &mut serial_stats);
            assert_eq!(got.as_ref().unwrap(), &want, "machine {i}");
        }
        assert_eq!(outcome.stats, serial_stats, "machine {i}");
    }
}
