//! `CheckStats` uses plain non-atomic counters by design: every instance
//! is owned by exactly one worker and folded post-hoc with
//! [`CheckStats::merge`]. These regression tests pin the properties that
//! make the post-hoc fold safe — no counts are dropped under concurrent
//! folding, the fold is order-invariant, and partitioned runs fold to
//! the serial total.

use std::sync::Mutex;

use mdes_core::CheckStats;

/// A deterministic per-thread stats fragment: `rounds` attempts, each
/// probing `options` options with one check apiece.
fn fragment(rounds: u64, options: usize) -> CheckStats {
    let mut stats = CheckStats::new();
    for round in 0..rounds {
        stats.begin_attempt();
        for _ in 0..options {
            stats.count_option();
            stats.count_check();
        }
        let success = round % 2 == 0;
        stats.end_attempt(success);
        if success {
            stats.count_operation();
        }
    }
    stats
}

#[test]
fn concurrent_folding_never_drops_counts() {
    // 8 threads × 50 fragments × 40 attempts, all merged into one shared
    // accumulator under contention.
    let total = Mutex::new(CheckStats::new());
    std::thread::scope(|scope| {
        for thread in 0..8u64 {
            let total = &total;
            scope.spawn(move || {
                for fragment_index in 0..50u64 {
                    let part = fragment(40, 1 + ((thread + fragment_index) % 3) as usize);
                    total
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .merge(&part);
                }
            });
        }
    });
    let total = total.into_inner().unwrap_or_else(|p| p.into_inner());

    // Sequential replay of the exact same fragments.
    let mut expected = CheckStats::new();
    for thread in 0..8u64 {
        for fragment_index in 0..50u64 {
            expected.merge(&fragment(40, 1 + ((thread + fragment_index) % 3) as usize));
        }
    }
    assert_eq!(total, expected);
    assert_eq!(total.attempts, 8 * 50 * 40);
    assert_eq!(total.options_per_attempt.total(), total.attempts);
}

#[test]
fn folding_is_order_invariant() {
    let parts: Vec<CheckStats> = (0..6)
        .map(|i| fragment(10 + i, 1 + (i as usize % 4)))
        .collect();
    let mut forward = CheckStats::new();
    for part in &parts {
        forward.merge(part);
    }
    let mut backward = CheckStats::new();
    for part in parts.iter().rev() {
        backward.merge(part);
    }
    assert_eq!(forward, backward);
}

#[test]
fn partitioned_runs_fold_to_the_serial_total() {
    // One serial run vs. the same attempts split across two owned
    // instances — the shape the engine's per-worker stats take. This is
    // the regression test for the `end_attempt` scratch reset: the serial
    // run ends mid-lifecycle state cleared, so the fold compares equal.
    let mut serial = CheckStats::new();
    for round in 0..30u64 {
        serial.begin_attempt();
        serial.count_option();
        serial.count_check();
        serial.end_attempt(true);
        serial.count_operation();
        let _ = round;
    }

    let mut left = CheckStats::new();
    let mut right = CheckStats::new();
    for round in 0..30u64 {
        let part = if round % 2 == 0 {
            &mut left
        } else {
            &mut right
        };
        part.begin_attempt();
        part.count_option();
        part.count_check();
        part.end_attempt(true);
        part.count_operation();
    }
    let mut folded = CheckStats::new();
    folded.merge(&left);
    folded.merge(&right);
    assert_eq!(folded, serial);
}

#[test]
fn a_panicked_job_costs_only_its_own_counts() {
    // Drive the raw pool with a job that panics: the fold over the
    // surviving results must equal a serial fold that skips the same job
    // — a panic cannot corrupt or drop other workers' counters.
    let items: Vec<u64> = (0..24).collect();
    let outcome = mdes_engine::run_batch(&items, 3, |_, index, &item| {
        assert!(index != 7, "deliberate test panic");
        fragment(item + 1, 2)
    });
    let panics: u64 = outcome.workers.iter().map(|w| w.panics).sum();
    assert_eq!(panics, 1);

    let mut folded = CheckStats::new();
    for slot in outcome.results.iter().flatten() {
        folded.merge(slot);
    }
    let mut expected = CheckStats::new();
    for &item in items.iter().filter(|&&item| item != 7) {
        expected.merge(&fragment(item + 1, 2));
    }
    assert_eq!(folded, expected);
}
