//! Concurrent batch scheduling over one shared compiled MDES.
//!
//! The paper's low-level MDES is an immutable, heavily-queried artifact:
//! every transformation (Sections 5–8) exists to make the scheduler's
//! check/reserve inner loop cheaper, and nothing mutates the description
//! after customization. This crate exploits that immutability for
//! parallelism: one [`CompiledMdes`] behind an [`Arc`] is shared read-only
//! across N workers, while every piece of *mutable* scheduling state — the
//! RU map, the dependence graph, the [`CheckStats`] counters — is owned by
//! exactly one worker.
//!
//! The crate has **zero external dependencies**; the pool is built from
//! [`std::thread::scope`] and an atomic work-queue cursor.
//!
//! ## Model
//!
//! * [`pool::run_batch`] — the generic thread pool: workers drain a shared
//!   job slice through an atomic cursor, each job's panic is caught and
//!   surfaced rather than tearing the batch down.
//! * [`Engine`] — the scheduling front: [`Engine::schedule_batch`] runs
//!   the list scheduler over a batch of regions (basic blocks) and returns
//!   index-aligned schedules plus folded statistics.
//!
//! ## Determinism contract
//!
//! The same region batch with the same shared MDES produces byte-identical
//! schedules and identical folded [`CheckStats`] regardless of the worker
//! count: each region is scheduled against its own fresh RU map, so job
//! results depend only on the job, and per-job statistics are folded in
//! job-index order ([`CheckStats::merge`] is commutative besides). Only
//! wall-clock measurements (queue wait, busy time, jobs/sec) vary run to
//! run. See `docs/concurrency.md`.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use mdes_core::{CompiledMdes, UsageEncoding};
//! use mdes_engine::Engine;
//! use mdes_sched::{Block, Op, Reg};
//!
//! let spec = mdes_lang::compile("
//!     resource ALU[2];
//!     or_tree AnyAlu = first_of(for a in 0..2: { ALU[a] @ 0 });
//!     class alu { constraint = AnyAlu; latency = 1; }
//! ").unwrap();
//! let mdes = Arc::new(CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap());
//! let alu = mdes.class_by_name("alu").unwrap();
//!
//! let mut block = Block::new();
//! for i in 0..4 {
//!     block.push(Op::new(alu, vec![Reg(i)], vec![]));
//! }
//! let blocks = vec![block.clone(), block];
//!
//! let outcome = Engine::new(mdes).schedule_batch(&blocks, 2);
//! assert!(outcome.is_clean());
//! assert_eq!(outcome.schedules.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;

use std::sync::Arc;

use mdes_core::{CheckStats, CompiledMdes};
use mdes_sched::{Block, ListScheduler, Priority, Schedule};
use mdes_telemetry::Telemetry;

pub use pool::{run_batch, PoolOutcome, WorkerLoad};

/// A scheduling engine: one shared, immutable compiled MDES serving
/// batches of region-scheduling jobs across a worker pool.
#[derive(Clone, Debug)]
pub struct Engine {
    mdes: Arc<CompiledMdes>,
    priority: Priority,
    hints: bool,
}

impl Engine {
    /// Creates an engine around a shared compiled description.
    pub fn new(mdes: Arc<CompiledMdes>) -> Engine {
        Engine {
            mdes,
            priority: Priority::default(),
            hints: false,
        }
    }

    /// Overrides the list-scheduler priority function.
    pub fn with_priority(mut self, priority: Priority) -> Engine {
        self.priority = priority;
        self
    }

    /// Enables hint-first option ordering in the per-job schedulers (see
    /// [`mdes_sched::ListScheduler::with_hints`]).  Hint state lives
    /// inside each job's scheduling run, so results stay independent of
    /// worker count and job order; off by default because hinted runs may
    /// select different (equally valid) options than strict priority
    /// order.
    pub fn with_hints(mut self, hints: bool) -> Engine {
        self.hints = hints;
        self
    }

    /// The shared description this engine schedules against.
    pub fn mdes(&self) -> &Arc<CompiledMdes> {
        &self.mdes
    }

    /// Schedules every block in `blocks` across `jobs` workers (clamped
    /// to at least one) and returns index-aligned results plus folded
    /// statistics.
    ///
    /// Workers share the compiled MDES read-only; each job schedules
    /// against its own RU map and its own [`CheckStats`], so the result
    /// for block *i* is independent of worker count and assignment (see
    /// the crate-level determinism contract). A job that panics leaves a
    /// `None` in its result slot and is counted in
    /// [`BatchOutcome::worker_panics`]; the rest of the batch completes.
    pub fn schedule_batch(&self, blocks: &[Block], jobs: usize) -> BatchOutcome {
        let mdes = &*self.mdes;
        let priority = self.priority;
        let hints = self.hints;
        let raw = run_batch(blocks, jobs, |_, _, block| {
            let scheduler = ListScheduler::new(mdes)
                .with_priority(priority)
                .with_hints(hints);
            let mut stats = CheckStats::new();
            let schedule = scheduler.schedule(block, &mut stats);
            (schedule, stats)
        });

        // Fold per-job statistics in job-index order — worker-count
        // invariant by construction — and per-worker aggregates for the
        // telemetry breakdown.
        let mut stats = CheckStats::new();
        let mut workers: Vec<WorkerReport> = raw
            .workers
            .iter()
            .map(|load| WorkerReport {
                load: load.clone(),
                stats: CheckStats::new(),
            })
            .collect();
        let mut schedules: Vec<Option<Schedule>> = Vec::with_capacity(blocks.len());
        for (slot, worker) in raw.results.into_iter().zip(raw.assigned) {
            match slot {
                Some((schedule, job_stats)) => {
                    stats.merge(&job_stats);
                    if let Some(worker) = worker {
                        workers[worker].stats.merge(&job_stats);
                    }
                    schedules.push(Some(schedule));
                }
                None => schedules.push(None),
            }
        }
        BatchOutcome {
            schedules,
            stats,
            workers,
            elapsed_nanos: raw.elapsed_nanos,
        }
    }
}

/// One worker's share of a batch: pool-level load plus the scheduling
/// statistics of the jobs it executed.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// Queue/busy timing and job counts from the pool.
    pub load: WorkerLoad,
    /// Folded [`CheckStats`] of this worker's jobs.
    pub stats: CheckStats,
}

/// The result of one [`Engine::schedule_batch`] call.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Per-block schedules, index-aligned with the input; `None` marks a
    /// job whose worker panicked mid-schedule.
    pub schedules: Vec<Option<Schedule>>,
    /// Statistics folded over all completed jobs, in job-index order.
    pub stats: CheckStats,
    /// Per-worker load and statistics, indexed by worker id.
    pub workers: Vec<WorkerReport>,
    /// Wall-clock nanoseconds for the whole batch.
    pub elapsed_nanos: u128,
}

impl BatchOutcome {
    /// Jobs that completed.
    pub fn completed(&self) -> usize {
        self.schedules.iter().filter(|s| s.is_some()).count()
    }

    /// Jobs lost to a panic (their result slots are `None`).
    pub fn worker_panics(&self) -> u64 {
        self.workers.iter().map(|w| w.load.panics).sum()
    }

    /// Whether every job completed without a panic.
    pub fn is_clean(&self) -> bool {
        self.worker_panics() == 0 && self.schedules.iter().all(|s| s.is_some())
    }

    /// Total schedule length over completed jobs, in cycles.
    pub fn total_cycles(&self) -> i64 {
        self.schedules
            .iter()
            .flatten()
            .map(|s| i64::from(s.length))
            .sum()
    }

    /// Completed jobs per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            return 0.0;
        }
        self.completed() as f64 / (self.elapsed_nanos as f64 / 1e9)
    }

    /// Folds the batch into a telemetry registry under `prefix` (e.g.
    /// `engine`): the folded scheduling counters under `{prefix}/sched`,
    /// a `jobs_per_sec` gauge, a `worker_panics` counter (always present,
    /// zero on clean runs, so metrics consumers can gate on it), and a
    /// per-worker breakdown — `queue_wait`/`busy` spans via the
    /// thread-safe [`Telemetry::record_span`] path plus job and
    /// check/reserve counters.
    pub fn publish(&self, tel: &Telemetry, prefix: &str) {
        self.stats.publish(tel, &format!("{prefix}/sched"));
        tel.counter_add(&format!("{prefix}/jobs_completed"), self.completed() as u64);
        tel.counter_add(&format!("{prefix}/worker_panics"), self.worker_panics());
        tel.gauge_set(&format!("{prefix}/jobs_per_sec"), self.jobs_per_sec());
        tel.gauge_set(&format!("{prefix}/workers"), self.workers.len() as f64);
        for worker in &self.workers {
            let base = format!("{prefix}/worker{}", worker.load.worker);
            tel.record_span(&format!("{base}/queue_wait"), worker.load.queue_wait_nanos);
            tel.record_span(&format!("{base}/busy"), worker.load.busy_nanos);
            tel.counter_add(&format!("{base}/jobs"), worker.load.jobs);
            tel.counter_add(&format!("{base}/attempts"), worker.stats.attempts);
            tel.counter_add(
                &format!("{base}/resource_checks"),
                worker.stats.resource_checks,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::UsageEncoding;
    use mdes_sched::{Op, Reg};

    fn two_alu_machine() -> Arc<CompiledMdes> {
        let mut spec = mdes_core::MdesSpec::new();
        let a0 = spec.resources_mut().add("ALU0").unwrap();
        let a1 = spec.resources_mut().add("ALU1").unwrap();
        let o0 = spec.add_option(mdes_core::TableOption::new(vec![
            mdes_core::ResourceUsage::new(a0, 0),
        ]));
        let o1 = spec.add_option(mdes_core::TableOption::new(vec![
            mdes_core::ResourceUsage::new(a1, 0),
        ]));
        let tree = spec.add_or_tree(mdes_core::OrTree::new(vec![o0, o1]));
        spec.add_class(
            "alu",
            mdes_core::Constraint::Or(tree),
            mdes_core::Latency::new(1),
            mdes_core::OpFlags::none(),
        )
        .unwrap();
        Arc::new(CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap())
    }

    fn blocks(mdes: &CompiledMdes, count: usize, ops: usize) -> Vec<Block> {
        let alu = mdes.class_by_name("alu").unwrap();
        (0..count)
            .map(|b| {
                let mut block = Block::new();
                for i in 0..ops {
                    block.push(Op::new(alu, vec![Reg((b * ops + i) as u32)], vec![]));
                }
                block
            })
            .collect()
    }

    #[test]
    fn batch_matches_serial_scheduling() {
        let mdes = two_alu_machine();
        let batch = blocks(&mdes, 7, 5);
        let outcome = Engine::new(Arc::clone(&mdes)).schedule_batch(&batch, 3);
        assert!(outcome.is_clean());

        let scheduler = ListScheduler::new(&mdes);
        let mut serial_stats = CheckStats::new();
        for (block, got) in batch.iter().zip(&outcome.schedules) {
            let want = scheduler.schedule(block, &mut serial_stats);
            assert_eq!(got.as_ref().unwrap(), &want);
        }
        assert_eq!(outcome.stats, serial_stats);
    }

    #[test]
    fn worker_stats_fold_to_the_batch_total() {
        let mdes = two_alu_machine();
        let batch = blocks(&mdes, 9, 4);
        let outcome = Engine::new(mdes).schedule_batch(&batch, 4);
        let mut folded = CheckStats::new();
        for worker in &outcome.workers {
            folded.merge(&worker.stats);
        }
        assert_eq!(folded, outcome.stats);
        let jobs: u64 = outcome.workers.iter().map(|w| w.load.jobs).sum();
        assert_eq!(jobs as usize, batch.len());
    }

    #[test]
    fn zero_workers_clamp_to_one() {
        let mdes = two_alu_machine();
        let batch = blocks(&mdes, 2, 3);
        let outcome = Engine::new(mdes).schedule_batch(&batch, 0);
        assert!(outcome.is_clean());
        assert_eq!(outcome.workers.len(), 1);
    }

    #[test]
    fn publish_surfaces_panics_counter_even_when_clean() {
        let mdes = two_alu_machine();
        let batch = blocks(&mdes, 3, 3);
        let outcome = Engine::new(mdes).schedule_batch(&batch, 2);
        let tel = Telemetry::new();
        outcome.publish(&tel, "engine");
        let report = tel.report();
        assert_eq!(report.counter("engine/worker_panics"), Some(0));
        assert_eq!(report.counter("engine/jobs_completed"), Some(3));
        assert!(report.gauge("engine/jobs_per_sec").is_some());
        assert!(report.span("engine/worker0/busy").is_some());
        assert!(report.span("engine/worker1/queue_wait").is_some());
    }
}
