//! Concurrent batch scheduling over one shared compiled MDES.
//!
//! The paper's low-level MDES is an immutable, heavily-queried artifact:
//! every transformation (Sections 5–8) exists to make the scheduler's
//! check/reserve inner loop cheaper, and nothing mutates the description
//! after customization. This crate exploits that immutability for
//! parallelism: one [`CompiledMdes`] behind an [`Arc`] is shared read-only
//! across N workers, while every piece of *mutable* scheduling state — the
//! RU map, the placement buffers, the [`CheckStats`] counters — is owned by
//! exactly one worker and **reused across every job that worker runs**
//! (reset on entry, never reallocated).
//!
//! The crate has **zero external dependencies**; the pool is built from
//! [`std::thread::scope`], a chunked atomic dispenser, and per-worker
//! range words that idle workers steal from.
//!
//! ## Model
//!
//! * [`pool::run_batch_stateful`] — the generic thread pool: workers claim
//!   contiguous chunks of the shared job slice (one `fetch_add` amortized
//!   over a whole chunk), steal half-chunks from each other when idle, and
//!   carry one long-lived state value across all their jobs. Each job's
//!   panic is caught and surfaced rather than tearing the batch down.
//! * [`Engine`] — the scheduling front: [`Engine::schedule_batch`] runs
//!   the list scheduler over a batch of regions (basic blocks) against
//!   borrowed per-worker scratch ([`mdes_sched::SchedScratch`]) and
//!   returns index-aligned schedules plus folded statistics.
//!
//! ## Determinism contract
//!
//! The same region batch with the same shared MDES produces byte-identical
//! schedules and identical folded [`CheckStats`] regardless of the worker
//! count, chunk size, or steal interleaving. Two facts carry the argument:
//!
//! 1. **Each job is a pure function of its block.** A job schedules
//!    against per-worker scratch that is *reset on entry* to a state
//!    observationally identical to freshly allocated scratch
//!    (`RuMap::clear` keeps only capacity, `CheckStats::reset` compares
//!    equal to `CheckStats::new()`, hint tables are re-initialized), so
//!    which worker runs a job — and what ran before it — cannot leak into
//!    its schedule. Results land in index-aligned slots.
//! 2. **The stats fold is partition-invariant.** [`CheckStats::merge`] is
//!    pure addition (counter adds plus histogram bucket adds), so folding
//!    per-worker accumulators equals folding per-job stats in job-index
//!    order, whatever the job-to-worker assignment was.
//!
//! Only wall-clock measurements (queue wait, busy time, jobs/sec, steal
//! counts) vary run to run. See `docs/concurrency.md`.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use mdes_core::{CompiledMdes, UsageEncoding};
//! use mdes_engine::Engine;
//! use mdes_sched::{Block, Op, Reg};
//!
//! let spec = mdes_lang::compile("
//!     resource ALU[2];
//!     or_tree AnyAlu = first_of(for a in 0..2: { ALU[a] @ 0 });
//!     class alu { constraint = AnyAlu; latency = 1; }
//! ").unwrap();
//! let mdes = Arc::new(CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap());
//! let alu = mdes.class_by_name("alu").unwrap();
//!
//! let mut block = Block::new();
//! for i in 0..4 {
//!     block.push(Op::new(alu, vec![Reg(i)], vec![]));
//! }
//! let blocks = vec![block.clone(), block];
//!
//! let outcome = Engine::new(mdes).schedule_batch(&blocks, 2);
//! assert!(outcome.is_clean());
//! assert_eq!(outcome.schedules.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;

use std::sync::Arc;

use mdes_core::{CheckStats, CompiledMdes};
use mdes_sched::{Block, ListScheduler, Priority, SchedScratch, Schedule};
use mdes_telemetry::Telemetry;

pub use pool::{chunk_size, run_batch, run_batch_stateful, PoolOutcome, WorkerLoad};

/// A scheduling engine: one shared, immutable compiled MDES serving
/// batches of region-scheduling jobs across a worker pool.
#[derive(Clone, Debug)]
pub struct Engine {
    mdes: Arc<CompiledMdes>,
    priority: Priority,
    hints: bool,
}

impl Engine {
    /// Creates an engine around a shared compiled description.
    pub fn new(mdes: Arc<CompiledMdes>) -> Engine {
        Engine {
            mdes,
            priority: Priority::default(),
            hints: false,
        }
    }

    /// Overrides the list-scheduler priority function.
    pub fn with_priority(mut self, priority: Priority) -> Engine {
        self.priority = priority;
        self
    }

    /// Enables hint-first option ordering in the per-job schedulers (see
    /// [`mdes_sched::ListScheduler::with_hints`]).  Hint state lives
    /// inside each job's scheduling run, so results stay independent of
    /// worker count and job order; off by default because hinted runs may
    /// select different (equally valid) options than strict priority
    /// order.
    pub fn with_hints(mut self, hints: bool) -> Engine {
        self.hints = hints;
        self
    }

    /// The shared description this engine schedules against.
    pub fn mdes(&self) -> &Arc<CompiledMdes> {
        &self.mdes
    }

    /// Schedules every block in `blocks` across `jobs` workers (clamped
    /// to at least one) and returns index-aligned results plus folded
    /// statistics.
    ///
    /// Workers share the compiled MDES read-only; each worker owns one
    /// long-lived [`SchedScratch`] (RU map, placement buffers, hint
    /// table) and one [`CheckStats`] scratch that are *reset* — not
    /// reallocated — at the start of every job, so the result for block
    /// *i* is independent of worker count and assignment (see the
    /// crate-level determinism contract). A job that panics leaves a
    /// `None` at its own index in [`BatchOutcome::schedules`] — results
    /// are written in place by job index, never shifted — and is counted
    /// in [`BatchOutcome::worker_panics`]; the rest of the batch
    /// completes, and the panicked job's partial [`CheckStats`] are
    /// discarded (a job's stats fold into its worker's accumulator only
    /// after the job returns).
    pub fn schedule_batch(&self, blocks: &[Block], jobs: usize) -> BatchOutcome {
        let mdes = &*self.mdes;
        let priority = self.priority;
        let hints = self.hints;

        struct WorkerState {
            scratch: SchedScratch,
            acc: CheckStats,
            job_stats: CheckStats,
        }

        let (raw, states) = run_batch_stateful(
            blocks,
            jobs,
            |_| WorkerState {
                scratch: SchedScratch::new(),
                acc: CheckStats::new(),
                job_stats: CheckStats::new(),
            },
            |state, _, _, block| {
                let scheduler = ListScheduler::new(mdes)
                    .with_priority(priority)
                    .with_hints(hints);
                // Reset on entry: a panicked predecessor may have left
                // job_stats (and the scratch) mid-flight.
                state.job_stats.reset();
                let schedule =
                    scheduler.schedule_reusing(block, &mut state.scratch, &mut state.job_stats);
                // Fold only after the fallible part is done, so a panicked
                // job contributes nothing to the accumulator.
                state.acc.merge(&state.job_stats);
                schedule
            },
        );

        // The batch total is the fold of the per-worker accumulators.
        // CheckStats::merge is pure addition, so this equals the job-index
        // -order fold of per-job stats regardless of how the queue
        // partitioned jobs across workers.
        let mut stats = CheckStats::new();
        let workers: Vec<WorkerReport> = raw
            .workers
            .iter()
            .zip(states)
            .map(|(load, state)| {
                stats.merge(&state.acc);
                WorkerReport {
                    load: load.clone(),
                    stats: state.acc,
                }
            })
            .collect();

        BatchOutcome {
            // Index-assigned by the pool: a panicked job is `None` at its
            // own slot, later results never shift.
            schedules: raw.results,
            stats,
            workers,
            elapsed_nanos: raw.elapsed_nanos,
        }
    }
}

/// One worker's share of a batch: pool-level load plus the scheduling
/// statistics of the jobs it executed.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// Queue/busy timing and job counts from the pool.
    pub load: WorkerLoad,
    /// Folded [`CheckStats`] of this worker's jobs.
    pub stats: CheckStats,
}

/// The result of one [`Engine::schedule_batch`] call.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Per-block schedules, index-aligned with the input; `None` marks a
    /// job whose worker panicked mid-schedule.
    pub schedules: Vec<Option<Schedule>>,
    /// Statistics folded over all completed jobs, in job-index order.
    pub stats: CheckStats,
    /// Per-worker load and statistics, indexed by worker id.
    pub workers: Vec<WorkerReport>,
    /// Wall-clock nanoseconds for the whole batch.
    pub elapsed_nanos: u128,
}

impl BatchOutcome {
    /// Jobs that completed.
    pub fn completed(&self) -> usize {
        self.schedules.iter().filter(|s| s.is_some()).count()
    }

    /// Jobs lost to a panic (their result slots are `None`).
    pub fn worker_panics(&self) -> u64 {
        self.workers.iter().map(|w| w.load.panics).sum()
    }

    /// Half-chunk steals performed across the batch (load-balance
    /// telemetry; varies run to run and never affects results).
    pub fn steals(&self) -> u64 {
        self.workers.iter().map(|w| w.load.steals).sum()
    }

    /// Whether every job completed without a panic.
    pub fn is_clean(&self) -> bool {
        self.worker_panics() == 0 && self.schedules.iter().all(|s| s.is_some())
    }

    /// Total schedule length over completed jobs, in cycles.
    pub fn total_cycles(&self) -> i64 {
        self.schedules
            .iter()
            .flatten()
            .map(|s| i64::from(s.length))
            .sum()
    }

    /// Completed jobs per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            return 0.0;
        }
        self.completed() as f64 / (self.elapsed_nanos as f64 / 1e9)
    }

    /// Folds the batch into a telemetry registry under `prefix` (e.g.
    /// `engine`): the folded scheduling counters under `{prefix}/sched`,
    /// a `jobs_per_sec` gauge, a `worker_panics` counter (always present,
    /// zero on clean runs, so metrics consumers can gate on it), and a
    /// per-worker breakdown — `queue_wait`/`busy` spans via the
    /// thread-safe [`Telemetry::record_span`] path plus job and
    /// check/reserve counters.
    pub fn publish(&self, tel: &Telemetry, prefix: &str) {
        self.stats.publish(tel, &format!("{prefix}/sched"));
        tel.counter_add(&format!("{prefix}/jobs_completed"), self.completed() as u64);
        tel.counter_add(&format!("{prefix}/worker_panics"), self.worker_panics());
        tel.gauge_set(&format!("{prefix}/jobs_per_sec"), self.jobs_per_sec());
        tel.gauge_set(&format!("{prefix}/workers"), self.workers.len() as f64);
        tel.counter_add(&format!("{prefix}/steals"), self.steals());
        for worker in &self.workers {
            let base = format!("{prefix}/worker{}", worker.load.worker);
            tel.record_span(&format!("{base}/queue_wait"), worker.load.queue_wait_nanos);
            tel.record_span(&format!("{base}/busy"), worker.load.busy_nanos);
            tel.counter_add(&format!("{base}/jobs"), worker.load.jobs);
            tel.counter_add(&format!("{base}/steals"), worker.load.steals);
            tel.counter_add(&format!("{base}/attempts"), worker.stats.attempts);
            tel.counter_add(
                &format!("{base}/resource_checks"),
                worker.stats.resource_checks,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::UsageEncoding;
    use mdes_sched::{Op, Reg};

    fn two_alu_machine() -> Arc<CompiledMdes> {
        let mut spec = mdes_core::MdesSpec::new();
        let a0 = spec.resources_mut().add("ALU0").unwrap();
        let a1 = spec.resources_mut().add("ALU1").unwrap();
        let o0 = spec.add_option(mdes_core::TableOption::new(vec![
            mdes_core::ResourceUsage::new(a0, 0),
        ]));
        let o1 = spec.add_option(mdes_core::TableOption::new(vec![
            mdes_core::ResourceUsage::new(a1, 0),
        ]));
        let tree = spec.add_or_tree(mdes_core::OrTree::new(vec![o0, o1]));
        spec.add_class(
            "alu",
            mdes_core::Constraint::Or(tree),
            mdes_core::Latency::new(1),
            mdes_core::OpFlags::none(),
        )
        .unwrap();
        Arc::new(CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap())
    }

    fn blocks(mdes: &CompiledMdes, count: usize, ops: usize) -> Vec<Block> {
        let alu = mdes.class_by_name("alu").unwrap();
        (0..count)
            .map(|b| {
                let mut block = Block::new();
                for i in 0..ops {
                    block.push(Op::new(alu, vec![Reg((b * ops + i) as u32)], vec![]));
                }
                block
            })
            .collect()
    }

    #[test]
    fn batch_matches_serial_scheduling() {
        let mdes = two_alu_machine();
        let batch = blocks(&mdes, 7, 5);
        let outcome = Engine::new(Arc::clone(&mdes)).schedule_batch(&batch, 3);
        assert!(outcome.is_clean());

        let scheduler = ListScheduler::new(&mdes);
        let mut serial_stats = CheckStats::new();
        for (block, got) in batch.iter().zip(&outcome.schedules) {
            let want = scheduler.schedule(block, &mut serial_stats);
            assert_eq!(got.as_ref().unwrap(), &want);
        }
        assert_eq!(outcome.stats, serial_stats);
    }

    #[test]
    fn worker_stats_fold_to_the_batch_total() {
        let mdes = two_alu_machine();
        let batch = blocks(&mdes, 9, 4);
        let outcome = Engine::new(mdes).schedule_batch(&batch, 4);
        let mut folded = CheckStats::new();
        for worker in &outcome.workers {
            folded.merge(&worker.stats);
        }
        assert_eq!(folded, outcome.stats);
        let jobs: u64 = outcome.workers.iter().map(|w| w.load.jobs).sum();
        assert_eq!(jobs as usize, batch.len());
    }

    #[test]
    fn a_panicked_job_leaves_none_at_its_own_index() {
        let mdes = two_alu_machine();
        let mut batch = blocks(&mdes, 7, 3);
        // Job 3 references a class the machine does not have, which
        // panics inside the scheduler mid-batch.
        batch[3] = {
            let mut block = Block::new();
            block.push(Op::new(
                mdes_core::ClassId::from_index(999),
                vec![Reg(0)],
                vec![],
            ));
            block
        };
        let outcome = Engine::new(Arc::clone(&mdes)).schedule_batch(&batch, 2);
        assert!(!outcome.is_clean());
        assert_eq!(outcome.worker_panics(), 1);
        assert_eq!(outcome.completed(), 6);
        assert!(outcome.schedules[3].is_none(), "panicked job's own slot");

        // Every other result sits at its own index (nothing shifted), and
        // the jobs the panicking worker ran *afterwards* on the same
        // reused scratch still match serial scheduling.
        let scheduler = ListScheduler::new(&mdes);
        let mut serial = CheckStats::new();
        for (index, block) in batch.iter().enumerate() {
            if index == 3 {
                continue;
            }
            let want = scheduler.schedule(block, &mut serial);
            assert_eq!(
                outcome.schedules[index].as_ref().unwrap(),
                &want,
                "job {index}"
            );
        }
        // The panicked job's partial stats were discarded from the fold.
        assert_eq!(outcome.stats, serial);
    }

    #[test]
    fn zero_workers_clamp_to_one() {
        let mdes = two_alu_machine();
        let batch = blocks(&mdes, 2, 3);
        let outcome = Engine::new(mdes).schedule_batch(&batch, 0);
        assert!(outcome.is_clean());
        assert_eq!(outcome.workers.len(), 1);
    }

    #[test]
    fn publish_surfaces_panics_counter_even_when_clean() {
        let mdes = two_alu_machine();
        let batch = blocks(&mdes, 3, 3);
        let outcome = Engine::new(mdes).schedule_batch(&batch, 2);
        let tel = Telemetry::new();
        outcome.publish(&tel, "engine");
        let report = tel.report();
        assert_eq!(report.counter("engine/worker_panics"), Some(0));
        assert_eq!(report.counter("engine/jobs_completed"), Some(3));
        assert!(report.gauge("engine/jobs_per_sec").is_some());
        assert!(report.span("engine/worker0/busy").is_some());
        assert!(report.span("engine/worker1/queue_wait").is_some());
    }
}
