//! The generic worker pool: scoped threads draining a shared job slice
//! through an atomic cursor.
//!
//! The queue is the job slice itself plus one [`AtomicUsize`] "next job"
//! cursor — there is no channel, no allocation per job, and no lock on
//! the hot path. Each worker claims the next index with a `fetch_add`,
//! runs the job, and keeps its results locally; the pool merges them into
//! index-aligned slots after all workers join, so output order never
//! depends on thread interleaving.
//!
//! A panic inside one job is caught ([`std::panic::catch_unwind`]) and
//! recorded in the claiming worker's [`WorkerLoad::panics`]; the worker
//! moves on to the next job and the batch completes with a `None` in the
//! panicked job's slot. Nothing here holds a `Mutex`, so a panic cannot
//! poison shared state.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Per-worker load measurements.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerLoad {
    /// Worker id, `0..jobs_threads`.
    pub worker: usize,
    /// Jobs completed by this worker.
    pub jobs: u64,
    /// Jobs claimed by this worker that panicked.
    pub panics: u64,
    /// Nanoseconds spent claiming work from the queue.
    pub queue_wait_nanos: u128,
    /// Nanoseconds spent executing jobs.
    pub busy_nanos: u128,
}

/// The raw result of [`run_batch`].
#[derive(Debug)]
pub struct PoolOutcome<R> {
    /// Job results, index-aligned with the input slice; `None` marks a
    /// panicked job.
    pub results: Vec<Option<R>>,
    /// Which worker executed each job (`None` for panicked jobs).
    pub assigned: Vec<Option<usize>>,
    /// Per-worker load, indexed by worker id.
    pub workers: Vec<WorkerLoad>,
    /// Wall-clock nanoseconds from first spawn to last join.
    pub elapsed_nanos: u128,
}

/// Runs `work` over every item of `items` on `threads` workers (clamped
/// to at least one) and returns index-aligned results.
///
/// `work` receives `(worker_id, job_index, item)`. It must not assume
/// anything about which worker runs which job: assignment is first-come
/// first-served off the shared cursor. Results are merged by job index,
/// so they are deterministic whenever `work` itself is a pure function of
/// `(job_index, item)`.
pub fn run_batch<T, R, F>(items: &[T], threads: usize, work: F) -> PoolOutcome<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &T) -> R + Sync,
{
    let threads = threads.max(1);
    let cursor = AtomicUsize::new(0);
    let started = Instant::now();

    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let mut assigned: Vec<Option<usize>> = vec![None; items.len()];
    let mut workers: Vec<WorkerLoad> = Vec::with_capacity(threads);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let cursor = &cursor;
                let work = &work;
                scope.spawn(move || {
                    let mut load = WorkerLoad {
                        worker,
                        ..WorkerLoad::default()
                    };
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let wait_started = Instant::now();
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        load.queue_wait_nanos += wait_started.elapsed().as_nanos();
                        if index >= items.len() {
                            break;
                        }
                        let busy_started = Instant::now();
                        let result =
                            catch_unwind(AssertUnwindSafe(|| work(worker, index, &items[index])));
                        load.busy_nanos += busy_started.elapsed().as_nanos();
                        match result {
                            Ok(value) => {
                                load.jobs += 1;
                                produced.push((index, value));
                            }
                            Err(_) => load.panics += 1,
                        }
                    }
                    (load, produced)
                })
            })
            .collect();
        for handle in handles {
            // Per-job panics are caught inside the worker, so join can
            // only fail if the pool bookkeeping itself panicked; there is
            // no state to salvage in that case.
            let (load, produced) = handle.join().expect("pool worker bookkeeping panicked");
            for (index, value) in produced {
                results[index] = Some(value);
                assigned[index] = Some(load.worker);
            }
            workers.push(load);
        }
    });
    workers.sort_by_key(|load| load.worker);

    PoolOutcome {
        results,
        assigned,
        workers,
        elapsed_nanos: started.elapsed().as_nanos(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_aligned_regardless_of_threads() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 7] {
            let outcome = run_batch(&items, threads, |_, index, item| item * 2 + index as u64);
            let values: Vec<u64> = outcome.results.into_iter().map(Option::unwrap).collect();
            let expected: Vec<u64> = items.iter().map(|i| i * 3).collect();
            assert_eq!(values, expected, "{threads} threads");
            assert_eq!(outcome.workers.len(), threads);
            let done: u64 = outcome.workers.iter().map(|w| w.jobs).sum();
            assert_eq!(done, 100);
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..64).collect();
        run_batch(&items, 8, |_, index, _| {
            hits[index].fetch_add(1, Ordering::Relaxed);
        });
        for (index, hit) in hits.iter().enumerate() {
            assert_eq!(hit.load(Ordering::Relaxed), 1, "job {index}");
        }
    }

    #[test]
    fn a_panicking_job_is_surfaced_and_the_rest_complete() {
        let items: Vec<usize> = (0..20).collect();
        let outcome = run_batch(&items, 3, |_, index, item| {
            assert!(index != 11, "deliberate test panic");
            *item
        });
        assert!(outcome.results[11].is_none());
        assert!(outcome.assigned[11].is_none());
        let completed = outcome.results.iter().flatten().count();
        assert_eq!(completed, 19);
        let panics: u64 = outcome.workers.iter().map(|w| w.panics).sum();
        assert_eq!(panics, 1);
    }

    #[test]
    fn empty_batches_are_fine() {
        let outcome = run_batch(&[] as &[u8], 4, |_, _, _| ());
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.workers.len(), 4);
    }
}
