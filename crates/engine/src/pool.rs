//! The generic worker pool: scoped threads draining a shared job slice
//! through chunked hand-off with work-stealing.
//!
//! The queue is the job slice itself plus one [`AtomicUsize`] chunk
//! dispenser and one packed [`AtomicU64`] range per worker — there is no
//! channel, no allocation per job, and no lock on the hot path. Each
//! worker claims a contiguous chunk of job indices with a single
//! `fetch_add` (the chunk amortizes the synchronized claim across many
//! jobs), keeps the chunk in its own range word, and pops indices off the
//! front locally. When the dispenser runs dry an idle worker scans the
//! other workers' range words and steals the back half of a victim's
//! remaining range with one CAS, so a skewed batch (one giant job among
//! many tiny ones) cannot strand the tail of a chunk behind a long job.
//!
//! Determinism does not depend on any of this: results are merged into
//! index-aligned slots after all workers join, so output order never
//! depends on thread interleaving, chunk size, or who stole what.
//!
//! The range word packs `start << 32 | end` (batches are capped at
//! `u32::MAX` jobs). Pops advance `start` by CAS; steals move `end` down
//! by CAS; the owner installs a fresh range only while its word is empty.
//! The ABA problem cannot arise: chunk starts come off a monotonically
//! increasing dispenser and a popped index never re-enters any range, so
//! a stale `(start, end)` bit pattern can never reappear in a slot.
//!
//! A panic inside one job is caught ([`std::panic::catch_unwind`]) and
//! recorded in the claiming worker's [`WorkerLoad::panics`]; the worker
//! moves on to the next job and the batch completes with a `None` in the
//! panicked job's slot. Nothing here holds a `Mutex`, so a panic cannot
//! poison shared state. Per-worker state handed out by
//! [`run_batch_stateful`] is *not* rebuilt after a panic — see its
//! contract below.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Per-worker load measurements.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerLoad {
    /// Worker id, `0..threads`.
    pub worker: usize,
    /// Jobs completed by this worker.
    pub jobs: u64,
    /// Jobs claimed by this worker that panicked.
    pub panics: u64,
    /// Successful half-chunk steals performed by this worker.
    pub steals: u64,
    /// Nanoseconds spent claiming work from the queue.
    pub queue_wait_nanos: u128,
    /// Nanoseconds spent executing jobs.
    pub busy_nanos: u128,
}

/// The raw result of [`run_batch`] / [`run_batch_stateful`].
#[derive(Debug)]
pub struct PoolOutcome<R> {
    /// Job results, index-aligned with the input slice; `None` marks a
    /// panicked job.
    pub results: Vec<Option<R>>,
    /// Which worker executed each job (`None` for panicked jobs).
    pub assigned: Vec<Option<usize>>,
    /// Per-worker load, indexed by worker id.
    pub workers: Vec<WorkerLoad>,
    /// Wall-clock nanoseconds from first spawn to last join.
    pub elapsed_nanos: u128,
}

/// Chunk size for a batch: large enough that one dispenser `fetch_add`
/// amortizes over many jobs, small enough that every worker sees several
/// chunks (load balance) and a steal still has something to take.
///
/// `jobs / (threads * 8)` aims for ~8 chunks per worker, clamped to
/// `[1, 64]` so tiny batches still hand out work and huge batches do not
/// concentrate too much in one claim.
pub fn chunk_size(jobs: usize, threads: usize) -> usize {
    (jobs / (threads.max(1) * 8)).clamp(1, 64)
}

#[inline]
fn pack(start: u32, end: u32) -> u64 {
    (u64::from(start) << 32) | u64::from(end)
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// The shared queue state: a chunk dispenser plus one packed range word
/// per worker.
struct StealQueue {
    cursor: AtomicUsize,
    /// `start << 32 | end` per worker; `start == end` means empty.
    ranges: Vec<AtomicU64>,
    len: usize,
    chunk: usize,
    /// Jobs finished (completed or panicked); workers exit only once this
    /// reaches `len`, so late-appearing steal targets are never missed.
    done: AtomicUsize,
}

impl StealQueue {
    fn new(len: usize, threads: usize) -> StealQueue {
        assert!(len <= u32::MAX as usize, "batch too large for range words");
        StealQueue {
            cursor: AtomicUsize::new(0),
            ranges: (0..threads).map(|_| AtomicU64::new(pack(0, 0))).collect(),
            len,
            chunk: chunk_size(len, threads),
            done: AtomicUsize::new(0),
        }
    }

    /// Pops the front index of `worker`'s own range, if any.
    fn pop_own(&self, worker: usize) -> Option<usize> {
        let slot = &self.ranges[worker];
        let mut current = slot.load(Ordering::Acquire);
        loop {
            let (start, end) = unpack(current);
            if start >= end {
                return None;
            }
            match slot.compare_exchange_weak(
                current,
                pack(start + 1, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(start as usize),
                Err(seen) => current = seen,
            }
        }
    }

    /// Claims the next chunk off the dispenser, installs its tail into
    /// `worker`'s (empty) range word, and returns the chunk's first index.
    fn claim_chunk(&self, worker: usize) -> Option<usize> {
        let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        let end = (start + self.chunk).min(self.len) as u32;
        let start = start as u32;
        if start + 1 < end {
            // Only the owner stores fresh ranges, and only while the word
            // is empty; concurrent steal CASes on the stale empty value
            // simply fail and reload.
            self.ranges[worker].store(pack(start + 1, end), Ordering::Release);
        }
        Some(start as usize)
    }

    /// Scans the other workers' ranges and steals the back half of the
    /// first non-empty one found: the victim keeps `[start, mid)`, the
    /// thief takes `[mid, end)`, runs `mid` immediately and parks the rest
    /// in its own range word. A single-job range is taken whole.
    fn steal(&self, worker: usize, load: &mut WorkerLoad) -> Option<usize> {
        let threads = self.ranges.len();
        for offset in 1..threads {
            let victim = (worker + offset) % threads;
            let slot = &self.ranges[victim];
            let mut current = slot.load(Ordering::Acquire);
            loop {
                let (start, end) = unpack(current);
                let remaining = end.saturating_sub(start);
                if remaining == 0 {
                    break; // next victim
                }
                // A single-job range is popped off the front whole (the
                // back-half split would be empty); otherwise the victim
                // keeps the (larger) front half so its next local pops
                // stay cache-warm and sequential.
                let (replacement, taken) = if remaining == 1 {
                    (pack(start + 1, end), start)
                } else {
                    let mid = start + remaining.div_ceil(2);
                    (pack(start, mid), mid)
                };
                match slot.compare_exchange_weak(
                    current,
                    replacement,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        load.steals += 1;
                        if remaining > 1 && taken + 1 < end {
                            self.ranges[worker].store(pack(taken + 1, end), Ordering::Release);
                        }
                        return Some(taken as usize);
                    }
                    Err(seen) => current = seen,
                }
            }
        }
        None
    }

    /// Claims the next job for `worker`: own range first, then a fresh
    /// chunk, then stealing. Returns `None` only when every job in the
    /// batch has finished, so a worker never exits while unexecuted jobs
    /// are parked in another worker's range.
    fn next_job(&self, worker: usize, load: &mut WorkerLoad) -> Option<usize> {
        loop {
            if let Some(index) = self.pop_own(worker) {
                return Some(index);
            }
            if let Some(index) = self.claim_chunk(worker) {
                return Some(index);
            }
            if let Some(index) = self.steal(worker, load) {
                return Some(index);
            }
            if self.done.load(Ordering::Acquire) >= self.len {
                return None;
            }
            // Work may still appear (a chunk mid-install, a long job whose
            // owner holds unstolen tail jobs); yield rather than spin so a
            // busy sibling on the same core gets the cycles.
            std::thread::yield_now();
        }
    }
}

/// Runs `work` over every item of `items` on `threads` workers (clamped
/// to at least one) and returns index-aligned results.
///
/// `work` receives `(worker_id, job_index, item)`. It must not assume
/// anything about which worker runs which job: assignment is chunked
/// first-come first-served with stealing. Results are merged by job
/// index, so they are deterministic whenever `work` itself is a pure
/// function of `(job_index, item)`.
pub fn run_batch<T, R, F>(items: &[T], threads: usize, work: F) -> PoolOutcome<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &T) -> R + Sync,
{
    let (outcome, _states) = run_batch_stateful(
        items,
        threads,
        |_| (),
        |(), worker, index, item| work(worker, index, item),
    );
    outcome
}

/// Like [`run_batch`], but each worker owns a long-lived state value
/// built once by `init(worker_id)` and borrowed mutably by every job the
/// worker executes. The final per-worker states are returned alongside
/// the outcome, indexed by worker id.
///
/// This is how the engine keeps one reusable scheduler scratch (RU map,
/// placement buffers, stats accumulator) per worker instead of
/// allocating per job: `work` resets the scratch on entry and the state
/// survives across every job the worker claims or steals.
///
/// # Panic contract
///
/// A panicking job leaves the worker's state exactly as the panic left
/// it — the pool does **not** rebuild state, because doing so would also
/// discard anything the worker accumulated across earlier jobs (stats,
/// warmed buffers). `work` must therefore treat the state as scratch of
/// unknown content and reset whatever it reads *on entry*, never relying
/// on the previous job having completed. Accumulations should be folded
/// in only after the fallible part of the job returns.
pub fn run_batch_stateful<T, R, S, I, F>(
    items: &[T],
    threads: usize,
    init: I,
    work: F,
) -> (PoolOutcome<R>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize, usize, &T) -> R + Sync,
{
    let threads = threads.max(1);
    let queue = StealQueue::new(items.len(), threads);
    let started = Instant::now();

    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let mut assigned: Vec<Option<usize>> = vec![None; items.len()];
    let mut workers: Vec<WorkerLoad> = Vec::with_capacity(threads);
    let mut states: Vec<(usize, S)> = Vec::with_capacity(threads);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let queue = &queue;
                let init = &init;
                let work = &work;
                scope.spawn(move || {
                    let mut load = WorkerLoad {
                        worker,
                        ..WorkerLoad::default()
                    };
                    let mut state = init(worker);
                    let mut produced: Vec<(usize, R)> =
                        Vec::with_capacity(items.len() / threads + 1);
                    loop {
                        let wait_started = Instant::now();
                        let claimed = queue.next_job(worker, &mut load);
                        load.queue_wait_nanos += wait_started.elapsed().as_nanos();
                        let Some(index) = claimed else { break };
                        let busy_started = Instant::now();
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            work(&mut state, worker, index, &items[index])
                        }));
                        load.busy_nanos += busy_started.elapsed().as_nanos();
                        match result {
                            Ok(value) => {
                                load.jobs += 1;
                                produced.push((index, value));
                            }
                            Err(_) => load.panics += 1,
                        }
                        queue.done.fetch_add(1, Ordering::AcqRel);
                    }
                    (load, produced, state)
                })
            })
            .collect();
        for handle in handles {
            // Per-job panics are caught inside the worker, so join can
            // only fail if the pool bookkeeping itself panicked; there is
            // no state to salvage in that case.
            let (load, produced, state) = handle.join().expect("pool worker bookkeeping panicked");
            for (index, value) in produced {
                results[index] = Some(value);
                assigned[index] = Some(load.worker);
            }
            states.push((load.worker, state));
            workers.push(load);
        }
    });
    workers.sort_by_key(|load| load.worker);
    states.sort_by_key(|(worker, _)| *worker);

    (
        PoolOutcome {
            results,
            assigned,
            workers,
            elapsed_nanos: started.elapsed().as_nanos(),
        },
        states.into_iter().map(|(_, state)| state).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn results_are_index_aligned_regardless_of_threads() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 7] {
            let outcome = run_batch(&items, threads, |_, index, item| item * 2 + index as u64);
            let values: Vec<u64> = outcome.results.into_iter().map(Option::unwrap).collect();
            let expected: Vec<u64> = items.iter().map(|i| i * 3).collect();
            assert_eq!(values, expected, "{threads} threads");
            assert_eq!(outcome.workers.len(), threads);
            let done: u64 = outcome.workers.iter().map(|w| w.jobs).sum();
            assert_eq!(done, 100);
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..64).collect();
        run_batch(&items, 8, |_, index, _| {
            hits[index].fetch_add(1, Ordering::Relaxed);
        });
        for (index, hit) in hits.iter().enumerate() {
            assert_eq!(hit.load(Ordering::Relaxed), 1, "job {index}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once_across_chunk_sizes() {
        // Batch sizes straddling chunk boundaries: smaller than one chunk
        // per worker, exactly chunked, and with a ragged final chunk.
        for jobs in [1usize, 3, 8, 65, 100, 513] {
            for threads in [1usize, 2, 5, 16] {
                let hits: Vec<AtomicUsize> = (0..jobs).map(|_| AtomicUsize::new(0)).collect();
                let items: Vec<usize> = (0..jobs).collect();
                run_batch(&items, threads, |_, index, _| {
                    hits[index].fetch_add(1, Ordering::Relaxed);
                });
                for (index, hit) in hits.iter().enumerate() {
                    assert_eq!(
                        hit.load(Ordering::Relaxed),
                        1,
                        "job {index} of {jobs} on {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn a_panicking_job_is_surfaced_and_the_rest_complete() {
        let items: Vec<usize> = (0..20).collect();
        let outcome = run_batch(&items, 3, |_, index, item| {
            assert!(index != 11, "deliberate test panic");
            *item
        });
        assert!(outcome.results[11].is_none());
        assert!(outcome.assigned[11].is_none());
        let completed = outcome.results.iter().flatten().count();
        assert_eq!(completed, 19);
        let panics: u64 = outcome.workers.iter().map(|w| w.panics).sum();
        assert_eq!(panics, 1);
    }

    #[test]
    fn empty_batches_are_fine() {
        let outcome = run_batch(&[] as &[u8], 4, |_, _, _| ());
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.workers.len(), 4);
    }

    #[test]
    fn chunk_size_is_bounded_and_nonzero() {
        assert_eq!(chunk_size(0, 4), 1);
        assert_eq!(chunk_size(7, 4), 1);
        assert_eq!(chunk_size(64, 4), 2);
        assert_eq!(chunk_size(1 << 20, 4), 64);
        assert_eq!(chunk_size(100, 0), 12); // zero threads clamps to one
    }

    #[test]
    fn worker_state_persists_across_jobs_and_is_returned() {
        let items: Vec<usize> = (0..50).collect();
        let (outcome, states) = run_batch_stateful(
            &items,
            4,
            |worker| (worker, 0u64),
            |state, _, _, item| {
                state.1 += *item as u64;
                *item
            },
        );
        assert_eq!(states.len(), 4);
        // States come back indexed by worker id.
        for (slot, (worker, _)) in states.iter().enumerate() {
            assert_eq!(slot, *worker);
        }
        // Every job folded its item into exactly one worker's accumulator.
        let total: u64 = states.iter().map(|(_, sum)| sum).sum();
        assert_eq!(total, (0..50).sum::<u64>());
        assert_eq!(outcome.results.iter().flatten().count(), 50);
    }

    #[test]
    fn a_blocked_chunk_is_stolen_by_an_idle_worker() {
        // 1024 jobs on 2 threads gives 64-job chunks, so whichever worker
        // claims the first chunk runs job 0 — which blocks until job 5
        // (parked in that same chunk) has run. Only the other worker can
        // run job 5, and only by stealing it out of the blocked worker's
        // range, so the batch completing proves the steal path works.
        let released = AtomicBool::new(false);
        let items: Vec<usize> = (0..1024).collect();
        let (outcome, _) = run_batch_stateful(
            &items,
            2,
            |_| (),
            |(), _, index, _| {
                if index == 0 {
                    let deadline = Instant::now() + std::time::Duration::from_secs(30);
                    while !released.load(Ordering::Acquire) {
                        assert!(Instant::now() < deadline, "job 5 was never stolen");
                        std::thread::yield_now();
                    }
                } else if index == 5 {
                    released.store(true, Ordering::Release);
                }
            },
        );
        assert_eq!(outcome.results.iter().flatten().count(), 1024);
        let steals: u64 = outcome.workers.iter().map(|w| w.steals).sum();
        assert!(steals >= 1, "expected at least one steal, got {steals}");
    }
}
