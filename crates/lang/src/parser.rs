//! Recursive-descent parser for HMDL.

use crate::ast::{
    BinOp, ClassBody, Expr, ForBinding, Item, OptionBody, OrItem, OrTreeBody, Program, ResourceRef,
    UnOp, UsageAst,
};
use crate::error::LangError;
use crate::lexer::lex;
use crate::token::{Span, Token, TokenKind};

/// Hard ceiling on accepted source size.  Real machine descriptions are a
/// few kilobytes; anything near this limit is hostile or corrupt input.
pub const MAX_SOURCE_BYTES: usize = 1 << 20;

/// Hard ceiling on expression and `for`-comprehension nesting, chosen
/// well below the point where recursive descent would exhaust the stack
/// (each parenthesized level costs the full expression-grammar chain of
/// stack frames, which matters on small test-thread stacks).
pub const MAX_NESTING_DEPTH: usize = 256;

/// Error recovery stops collecting diagnostics past this count; a run of
/// cascading errors after that adds noise, not information.
pub const MAX_ERRORS: usize = 25;

/// Parses HMDL source into a [`Program`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its source span.
/// Use [`parse_recovering`] to collect every diagnostic in one run.
///
/// # Examples
///
/// ```
/// use mdes_lang::parser::parse;
///
/// let program = parse(
///     "resource M;\n\
///      or_tree UseM = first_of({ M @ 0 });\n\
///      class load { constraint = UseM; latency = 1; flags = load; }",
/// ).unwrap();
/// assert_eq!(program.items.len(), 3);
/// ```
pub fn parse(source: &str) -> Result<Program, LangError> {
    parse_recovering(source).map_err(|errors| {
        errors
            .into_iter()
            .next()
            .unwrap_or_else(|| LangError::new("parse failed", Span::default()))
    })
}

/// Parses HMDL source, recovering at item boundaries after each syntax
/// error so one run reports every diagnostic (up to [`MAX_ERRORS`]).
///
/// # Errors
///
/// Returns all collected errors in source order.  The first element is
/// always the error [`parse`] would have returned.
pub fn parse_recovering(source: &str) -> Result<Program, Vec<LangError>> {
    if source.len() > MAX_SOURCE_BYTES {
        return Err(vec![LangError::new(
            format!(
                "source is {} bytes, over the {MAX_SOURCE_BYTES}-byte limit",
                source.len()
            ),
            Span::default(),
        )]);
    }
    let tokens = match lex(source) {
        Ok(tokens) => tokens,
        Err(err) => return Err(vec![err]),
    };
    let mut parser = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let mut items = Vec::new();
    let mut errors = Vec::new();
    while parser.peek_kind() != &TokenKind::Eof {
        // Items do not nest, so the depth budget resets per item; this
        // also clears any un-unwound depth left by an error mid-item.
        parser.depth = 0;
        match parser.item() {
            Ok(item) => items.push(item),
            Err(err) => {
                errors.push(err);
                if errors.len() >= MAX_ERRORS {
                    errors.push(LangError::new(
                        format!("too many errors ({MAX_ERRORS}); giving up"),
                        parser.peek().span,
                    ));
                    break;
                }
                parser.synchronize();
            }
        }
    }
    if errors.is_empty() {
        Ok(Program { items })
    } else {
        Err(errors)
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current nesting depth of recursive productions (parenthesized
    /// expressions, unary chains, nested `for` items).
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn advance(&mut self) -> Token {
        let token = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        token
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, LangError> {
        if self.peek_kind() == &kind {
            Ok(self.advance())
        } else {
            Err(LangError::new(
                format!("expected `{kind}`, found `{}`", self.peek_kind()),
                self.peek().span,
            ))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), LangError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let span = self.peek().span;
                self.advance();
                Ok((name, span))
            }
            other => Err(LangError::new(
                format!("expected {what}, found `{other}`"),
                self.peek().span,
            )),
        }
    }

    /// Enters one level of recursive nesting, rejecting input deeper than
    /// [`MAX_NESTING_DEPTH`].  Every successful call is paired with a
    /// `self.depth -= 1` on the non-error path; error paths leave the
    /// counter elevated, which is fine because recovery resets it per
    /// item.
    fn descend(&mut self, span: Span) -> Result<(), LangError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(LangError::new(
                format!("nesting exceeds the maximum depth of {MAX_NESTING_DEPTH}"),
                span,
            ));
        }
        Ok(())
    }

    /// Skips ahead to a plausible item boundary after a syntax error: the
    /// token after the next top-level `;` or closing `}`, or the next
    /// keyword that can start an item.  Bracket depth is tracked so a `;`
    /// inside a class body or parenthesized list does not end recovery
    /// early.
    fn synchronize(&mut self) {
        let mut depth: usize = 0;
        loop {
            match self.peek_kind() {
                TokenKind::Eof => return,
                TokenKind::Let
                | TokenKind::Resource
                | TokenKind::Option
                | TokenKind::OrTree
                | TokenKind::AndOrTree
                | TokenKind::Op
                | TokenKind::Bypass
                | TokenKind::Class
                    if depth == 0 =>
                {
                    return;
                }
                TokenKind::LBrace | TokenKind::LParen | TokenKind::LBracket => {
                    depth += 1;
                    self.advance();
                }
                TokenKind::RBrace => {
                    depth = depth.saturating_sub(1);
                    self.advance();
                    if depth == 0 {
                        return self.skip_closers();
                    }
                }
                TokenKind::RParen | TokenKind::RBracket => {
                    depth = depth.saturating_sub(1);
                    self.advance();
                }
                TokenKind::Semi => {
                    self.advance();
                    if depth == 0 {
                        return self.skip_closers();
                    }
                }
                _ => {
                    self.advance();
                }
            }
        }
    }

    /// Consumes stray closing delimiters after a recovery point.  No item
    /// starts with a closer, so reporting each as its own "expected an
    /// item" error would only cascade noise from one real mistake (an
    /// error inside `class { ... }` synchronizes at the inner `;`,
    /// leaving the body's `}` behind).
    fn skip_closers(&mut self) {
        while matches!(
            self.peek_kind(),
            TokenKind::RBrace | TokenKind::RParen | TokenKind::RBracket
        ) {
            self.advance();
        }
    }

    fn item(&mut self) -> Result<Item, LangError> {
        let start = self.peek().span;
        match self.peek_kind() {
            TokenKind::Let => {
                self.advance();
                let (name, _) = self.expect_ident("constant name")?;
                self.expect(TokenKind::Eq)?;
                let value = self.expr()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Item::Let {
                    name,
                    value,
                    span: start.to(end),
                })
            }
            TokenKind::Resource => {
                self.advance();
                let (name, _) = self.expect_ident("resource name")?;
                let count = if self.eat(&TokenKind::LBracket) {
                    let count = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    Some(count)
                } else {
                    None
                };
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Item::Resource {
                    name,
                    count,
                    span: start.to(end),
                })
            }
            TokenKind::Option => {
                self.advance();
                let (name, _) = self.expect_ident("option name")?;
                self.expect(TokenKind::Eq)?;
                let body = self.option_body()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Item::Option {
                    name,
                    body,
                    span: start.to(end),
                })
            }
            TokenKind::OrTree => {
                self.advance();
                let (name, _) = self.expect_ident("OR-tree name")?;
                self.expect(TokenKind::Eq)?;
                let body = self.or_tree_body()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Item::OrTree {
                    name,
                    body,
                    span: start.to(end),
                })
            }
            TokenKind::AndOrTree => {
                self.advance();
                let (name, _) = self.expect_ident("AND/OR-tree name")?;
                self.expect(TokenKind::Eq)?;
                self.expect(TokenKind::AllOf)?;
                self.expect(TokenKind::LParen)?;
                let mut trees = vec![self.expect_ident("OR-tree name")?];
                while self.eat(&TokenKind::Comma) {
                    trees.push(self.expect_ident("OR-tree name")?);
                }
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Item::AndOrTree {
                    name,
                    trees,
                    span: start.to(end),
                })
            }
            TokenKind::Op => {
                self.advance();
                let mut names = vec![self.expect_ident("opcode mnemonic")?];
                while self.eat(&TokenKind::Comma) {
                    names.push(self.expect_ident("opcode mnemonic")?);
                }
                self.expect(TokenKind::Eq)?;
                let class = self.expect_ident("class name")?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Item::Opcode {
                    names,
                    class,
                    span: start.to(end),
                })
            }
            TokenKind::Bypass => {
                self.advance();
                let producer = self.expect_ident("producer class name")?;
                self.expect(TokenKind::Comma)?;
                let consumer = self.expect_ident("consumer class name")?;
                self.expect(TokenKind::Eq)?;
                let latency = self.expr()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Item::Bypass {
                    producer,
                    consumer,
                    latency,
                    span: start.to(end),
                })
            }
            TokenKind::Class => {
                self.advance();
                let (name, _) = self.expect_ident("class name")?;
                self.expect(TokenKind::LBrace)?;
                let mut body = ClassBody::default();
                while !self.eat(&TokenKind::RBrace) {
                    self.class_field(&mut body)?;
                }
                let span = start.to(self.tokens[self.pos.saturating_sub(1)].span);
                Ok(Item::Class { name, body, span })
            }
            other => Err(LangError::new(
                format!("expected an item (let/resource/option/or_tree/and_or_tree/class), found `{other}`"),
                start,
            )),
        }
    }

    fn class_field(&mut self, body: &mut ClassBody) -> Result<(), LangError> {
        let (field, span) = self.expect_ident("class field name")?;
        self.expect(TokenKind::Eq)?;
        match field.as_str() {
            "constraint" => {
                let target = self.expect_ident("constraint tree name")?;
                if body.constraint.replace(target).is_some() {
                    return Err(LangError::new("duplicate `constraint` field", span));
                }
            }
            "latency" => {
                let value = self.expr()?;
                if body.latency.replace(value).is_some() {
                    return Err(LangError::new("duplicate `latency` field", span));
                }
            }
            "mem_latency" => {
                let value = self.expr()?;
                if body.mem_latency.replace(value).is_some() {
                    return Err(LangError::new("duplicate `mem_latency` field", span));
                }
            }
            "src_time" => {
                let value = self.expr()?;
                if body.src_time.replace(value).is_some() {
                    return Err(LangError::new("duplicate `src_time` field", span));
                }
            }
            "flags" => loop {
                body.flags.push(self.expect_ident("flag name")?);
                if !self.eat(&TokenKind::Pipe) {
                    break;
                }
            },
            other => {
                return Err(LangError::new(
                    format!(
                        "unknown class field `{other}` (expected constraint, latency, mem_latency, src_time or flags)"
                    ),
                    span,
                ));
            }
        }
        self.expect(TokenKind::Semi)?;
        Ok(())
    }

    fn or_tree_body(&mut self) -> Result<OrTreeBody, LangError> {
        match self.peek_kind() {
            TokenKind::FirstOf => {
                self.advance();
                self.expect(TokenKind::LParen)?;
                let mut items = vec![self.or_item()?];
                while self.eat(&TokenKind::Comma) {
                    items.push(self.or_item()?);
                }
                self.expect(TokenKind::RParen)?;
                Ok(OrTreeBody::FirstOf(items))
            }
            TokenKind::Cross => {
                let start = self.advance().span;
                self.expect(TokenKind::LParen)?;
                let mut trees = vec![self.expect_ident("OR-tree name")?];
                while self.eat(&TokenKind::Comma) {
                    trees.push(self.expect_ident("OR-tree name")?);
                }
                let end = self.expect(TokenKind::RParen)?.span;
                Ok(OrTreeBody::Cross(trees, start.to(end)))
            }
            other => Err(LangError::new(
                format!("expected `first_of` or `cross`, found `{other}`"),
                self.peek().span,
            )),
        }
    }

    fn or_item(&mut self) -> Result<OrItem, LangError> {
        match self.peek_kind().clone() {
            TokenKind::LBrace => Ok(OrItem::Inline(self.option_body()?)),
            TokenKind::Ident(name) => {
                let span = self.advance().span;
                Ok(OrItem::Named(name, span))
            }
            TokenKind::For => {
                let start = self.advance().span;
                self.descend(start)?;
                let mut bindings = vec![self.for_binding()?];
                while self.eat(&TokenKind::Comma) {
                    bindings.push(self.for_binding()?);
                }
                let guard = if self.eat(&TokenKind::If) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(TokenKind::Colon)?;
                let body = Box::new(self.or_item()?);
                self.depth -= 1;
                let span = start.to(self.tokens[self.pos.saturating_sub(1)].span);
                Ok(OrItem::For {
                    bindings,
                    guard,
                    body,
                    span,
                })
            }
            other => Err(LangError::new(
                format!("expected an option (`{{...}}`, a name, or `for`), found `{other}`"),
                self.peek().span,
            )),
        }
    }

    fn for_binding(&mut self) -> Result<ForBinding, LangError> {
        let (var, _) = self.expect_ident("loop variable")?;
        self.expect(TokenKind::In)?;
        let lo = self.expr()?;
        self.expect(TokenKind::DotDot)?;
        let hi = self.expr()?;
        Ok(ForBinding { var, lo, hi })
    }

    fn option_body(&mut self) -> Result<OptionBody, LangError> {
        let start = self.expect(TokenKind::LBrace)?.span;
        let mut usages = vec![self.usage()?];
        while self.eat(&TokenKind::Comma) {
            usages.push(self.usage()?);
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        Ok(OptionBody {
            usages,
            span: start.to(end),
        })
    }

    fn usage(&mut self) -> Result<UsageAst, LangError> {
        let (name, span) = self.expect_ident("resource name")?;
        let index = if self.eat(&TokenKind::LBracket) {
            let index = self.expr()?;
            self.expect(TokenKind::RBracket)?;
            Some(index)
        } else {
            None
        };
        self.expect(TokenKind::At)?;
        let time = self.expr()?;
        Ok(UsageAst {
            resource: ResourceRef { name, index, span },
            time,
        })
    }

    // Expression grammar, lowest precedence first:
    //   or  := and (|| and)*
    //   and := cmp (&& cmp)*
    //   cmp := add ((==|!=|<|<=|>|>=) add)?
    //   add := mul ((+|-) mul)*
    //   mul := unary ((*|/|%) unary)*
    //   unary := - unary | atom
    //   atom := INT | IDENT | ( expr )
    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.peek_kind() == &TokenKind::OrOr {
            self.advance();
            let rhs = self.and_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek_kind() == &TokenKind::AndAnd {
            self.advance();
            let rhs = self.cmp_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek_kind() {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.add_expr()?;
        let span = lhs.span().to(rhs.span());
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs), span))
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.advance();
            let rhs = self.unary_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        if self.peek_kind() == &TokenKind::Minus {
            let start = self.advance().span;
            self.descend(start)?;
            let inner = self.unary_expr()?;
            self.depth -= 1;
            let span = start.to(inner.span());
            return Ok(Expr::Unary(UnOp::Neg, Box::new(inner), span));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, LangError> {
        match self.peek_kind().clone() {
            TokenKind::Int(value) => {
                let span = self.advance().span;
                Ok(Expr::Int(value, span))
            }
            TokenKind::Ident(name) => {
                let span = self.advance().span;
                Ok(Expr::Var(name, span))
            }
            TokenKind::LParen => {
                let span = self.peek().span;
                self.descend(span)?;
                self.advance();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                self.depth -= 1;
                Ok(inner)
            }
            other => Err(LangError::new(
                format!("expected expression, found `{other}`"),
                self.peek().span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_resources_options_and_classes() {
        let src = "
            let N = 2;
            resource Decoder[3];
            resource M;
            option UseM = { M @ 0 };
            or_tree Mem = first_of(UseM);
            or_tree AnyDec = first_of(for d in 0..3: { Decoder[d] @ -1 });
            and_or_tree Load = all_of(Mem, AnyDec);
            class load { constraint = Load; latency = N; flags = load; }
        ";
        let program = parse(src).unwrap();
        assert_eq!(program.items.len(), 8);
        match &program.items[6] {
            Item::AndOrTree { name, trees, .. } => {
                assert_eq!(name, "Load");
                assert_eq!(trees.len(), 2);
            }
            other => panic!("expected and_or_tree, got {other:?}"),
        }
    }

    #[test]
    fn parses_for_with_guard_and_multiple_bindings() {
        let src =
            "or_tree P = first_of(for i in 0..4, j in 0..4 if j > i: { RP[i] @ 0, RP[j] @ 0 });";
        let program = parse(src).unwrap();
        match &program.items[0] {
            Item::OrTree {
                body: OrTreeBody::FirstOf(items),
                ..
            } => match &items[0] {
                OrItem::For {
                    bindings, guard, ..
                } => {
                    assert_eq!(bindings.len(), 2);
                    assert!(guard.is_some());
                }
                other => panic!("expected for, got {other:?}"),
            },
            other => panic!("expected first_of tree, got {other:?}"),
        }
    }

    #[test]
    fn parses_cross_body() {
        let program = parse("or_tree X = cross(A, B, C);").unwrap();
        match &program.items[0] {
            Item::OrTree {
                body: OrTreeBody::Cross(trees, _),
                ..
            } => assert_eq!(trees.len(), 3),
            other => panic!("expected cross tree, got {other:?}"),
        }
    }

    #[test]
    fn expression_precedence_is_conventional() {
        // 1 + 2 * 3 parses as 1 + (2 * 3).
        let program = parse("let x = 1 + 2 * 3;").unwrap();
        match &program.items[0] {
            Item::Let { value, .. } => match value {
                Expr::Binary(BinOp::Add, _, rhs, _) => {
                    assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _, _)));
                }
                other => panic!("expected add at top, got {other:?}"),
            },
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn flags_accept_pipe_separated_list() {
        let program = parse("class br { constraint = T; flags = branch | serial; }").unwrap();
        match &program.items[0] {
            Item::Class { body, .. } => {
                let names: Vec<&str> = body.flags.iter().map(|(n, _)| n.as_str()).collect();
                assert_eq!(names, vec!["branch", "serial"]);
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_class_fields_are_rejected() {
        let err = parse("class c { latency = 1; latency = 2; }").unwrap_err();
        assert!(err.message.contains("duplicate `latency`"));
    }

    #[test]
    fn unknown_class_field_is_rejected() {
        let err = parse("class c { speed = 1; }").unwrap_err();
        assert!(err.message.contains("unknown class field `speed`"));
    }

    #[test]
    fn missing_semicolon_reports_expected_token() {
        let err = parse("resource M").unwrap_err();
        assert!(err.message.contains("expected `;`"));
    }

    #[test]
    fn empty_option_body_is_a_parse_error() {
        let err = parse("option x = { };").unwrap_err();
        assert!(err.message.contains("expected resource name"));
    }

    #[test]
    fn negative_times_parse_as_unary_minus() {
        let program = parse("option x = { M @ -2 };").unwrap();
        match &program.items[0] {
            Item::Option { body, .. } => {
                assert!(matches!(body.usages[0].time, Expr::Unary(UnOp::Neg, _, _)));
            }
            other => panic!("expected option, got {other:?}"),
        }
    }

    #[test]
    fn garbage_at_top_level_is_reported() {
        let err = parse("42;").unwrap_err();
        assert!(err.message.contains("expected an item"));
    }

    #[test]
    fn recovery_collects_every_error_in_one_run() {
        // Three independent mistakes: a bad let, an unknown class field,
        // and garbage at top level — all reported in source order.
        let src = "let x = ;\n\
                   class c { speed = 1; }\n\
                   resource M;\n\
                   42;";
        let errors = parse_recovering(src).unwrap_err();
        assert_eq!(errors.len(), 3, "{errors:?}");
        assert!(errors[0].message.contains("expected expression"));
        assert!(errors[1].message.contains("unknown class field"));
        assert!(errors[2].message.contains("expected an item"));
    }

    #[test]
    fn recovery_keeps_well_formed_items_around_an_error() {
        let src = "resource M;\n\
                   or_tree T = first_of(;\n\
                   resource N;";
        let errors = parse_recovering(src).unwrap_err();
        assert_eq!(errors.len(), 1);
        // The parse still failed overall, but fail-fast `parse` reports
        // the identical first error.
        assert_eq!(parse(src).unwrap_err(), errors[0]);
    }

    #[test]
    fn first_recovered_error_matches_fail_fast_parse() {
        let src = "class c { latency = 1; latency = 2; } bogus";
        let errors = parse_recovering(src).unwrap_err();
        assert_eq!(parse(src).unwrap_err(), errors[0]);
        assert!(errors[0].message.contains("duplicate `latency`"));
    }

    #[test]
    fn error_count_is_capped() {
        let src = "@ ;".repeat(MAX_ERRORS * 3);
        let errors = parse_recovering(&src).unwrap_err();
        assert_eq!(errors.len(), MAX_ERRORS + 1);
        assert!(errors.last().unwrap().message.contains("too many errors"));
    }

    #[test]
    fn nesting_past_the_depth_limit_is_a_typed_error_not_an_overflow() {
        let mut expr = String::from("1");
        for _ in 0..MAX_NESTING_DEPTH + 8 {
            expr = format!("({expr})");
        }
        let err = parse(&format!("let x = {expr};")).unwrap_err();
        assert!(err.message.contains("nesting exceeds"), "{}", err.message);

        // Unary-minus chains recurse too.
        let minus = "-".repeat(MAX_NESTING_DEPTH + 8);
        let err = parse(&format!("let x = {minus}1;")).unwrap_err();
        assert!(err.message.contains("nesting exceeds"), "{}", err.message);

        // Nested `for` items share the same budget.
        let mut item = String::from("{ M @ 0 }");
        for i in 0..MAX_NESTING_DEPTH + 8 {
            item = format!("for v{i} in 0..1: {item}");
        }
        let err = parse(&format!("or_tree T = first_of({item});")).unwrap_err();
        assert!(err.message.contains("nesting exceeds"), "{}", err.message);
    }

    #[test]
    fn nesting_under_the_limit_still_parses() {
        let mut expr = String::from("1");
        for _ in 0..MAX_NESTING_DEPTH - 2 {
            expr = format!("({expr})");
        }
        assert!(parse(&format!("let x = {expr};")).is_ok());
    }

    #[test]
    fn oversized_source_is_rejected_up_front() {
        let source = " ".repeat(MAX_SOURCE_BYTES + 1);
        let err = parse(&source).unwrap_err();
        assert!(err.message.contains("byte limit"), "{}", err.message);
    }

    #[test]
    fn depth_budget_resets_between_items() {
        // One deep-but-legal expression per item must not accumulate.
        let mut expr = String::from("1");
        for _ in 0..MAX_NESTING_DEPTH / 2 {
            expr = format!("({expr})");
        }
        let src = format!("let a = {expr};\nlet b = {expr};\nlet c = {expr};");
        assert!(parse(&src).is_ok());
    }
}
