//! Tokens and source spans for the HMDL language.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Computes 1-based (line, column) of the span start within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in source.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// Token kinds of HMDL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// Integer literal.
    Int(i64),
    /// Identifier (may be a contextual keyword).
    Ident(String),
    /// String literal (used for documentation fields).
    Str(String),

    // Keywords.
    /// `let`
    Let,
    /// `resource`
    Resource,
    /// `option`
    Option,
    /// `or_tree`
    OrTree,
    /// `and_or_tree`
    AndOrTree,
    /// `class`
    Class,
    /// `op`
    Op,
    /// `bypass`
    Bypass,
    /// `first_of`
    FirstOf,
    /// `all_of`
    AllOf,
    /// `cross`
    Cross,
    /// `for`
    For,
    /// `in`
    In,
    /// `if`
    If,

    // Punctuation.
    /// `=`
    Eq,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `@`
    At,
    /// `..`
    DotDot,
    /// `:`
    Colon,
    /// `|`
    Pipe,

    // Operators.
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Let => write!(f, "let"),
            TokenKind::Resource => write!(f, "resource"),
            TokenKind::Option => write!(f, "option"),
            TokenKind::OrTree => write!(f, "or_tree"),
            TokenKind::AndOrTree => write!(f, "and_or_tree"),
            TokenKind::Class => write!(f, "class"),
            TokenKind::Op => write!(f, "op"),
            TokenKind::Bypass => write!(f, "bypass"),
            TokenKind::FirstOf => write!(f, "first_of"),
            TokenKind::AllOf => write!(f, "all_of"),
            TokenKind::Cross => write!(f, "cross"),
            TokenKind::For => write!(f, "for"),
            TokenKind::In => write!(f, "in"),
            TokenKind::If => write!(f, "if"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::At => write!(f, "@"),
            TokenKind::DotDot => write!(f, ".."),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Pipe => write!(f, "|"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::EqEq => write!(f, "=="),
            TokenKind::NotEq => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::AndAnd => write!(f, "&&"),
            TokenKind::OrOr => write!(f, "||"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// Where the token came from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(6, 7).line_col(src), (3, 1));
    }

    #[test]
    fn display_round_trips_symbols() {
        assert_eq!(TokenKind::DotDot.to_string(), "..");
        assert_eq!(TokenKind::Ident("abc".into()).to_string(), "abc");
        assert_eq!(TokenKind::Int(-4).to_string(), "-4");
    }
}
