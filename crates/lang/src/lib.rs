//! HMDL — the high-level machine description language of the two-tier MDES
//! model (the paper's Section 1 "high-level language" tier).
//!
//! HMDL lets a compiler writer describe execution constraints in an
//! easy-to-understand, maintainable, retargetable form; [`compile`]
//! translates it into the mid-level `MdesSpec`, which `mdes-opt` optimizes
//! and `mdes-core` compiles into the low-level representation.
//!
//! # Example: the SuperSPARC integer load of the paper's Figure 3b
//!
//! ```
//! let spec = mdes_lang::compile("
//!     resource Decoder[3];
//!     resource WrPt[2];
//!     resource M;
//!
//!     or_tree UseM   = first_of({ M @ 0 });
//!     or_tree AnyWr  = first_of(for w in 0..2: { WrPt[w] @ 1 });
//!     or_tree AnyDec = first_of(for d in 0..3: { Decoder[d] @ -1 });
//!
//!     and_or_tree Load = all_of(UseM, AnyWr, AnyDec);
//!     class load { constraint = Load; latency = 1; flags = load; }
//! ").unwrap();
//!
//! let load = spec.class_by_name("load").unwrap();
//! // 1 x 2 x 3 = the six reservation tables of the paper's Figure 1.
//! assert_eq!(spec.class_option_count(load), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod elaborate;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;

pub use elaborate::{
    compile, compile_all, compile_all_with_telemetry, compile_with_telemetry, elaborate,
};
pub use error::LangError;
pub use parser::{parse, parse_recovering, MAX_NESTING_DEPTH, MAX_SOURCE_BYTES};
pub use printer::{print, structurally_equal};
