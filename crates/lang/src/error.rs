//! Diagnostics for the HMDL front end.

use std::fmt;

use crate::token::Span;

/// An error produced while lexing, parsing or elaborating HMDL source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LangError {
    /// Human-readable message (lowercase, no trailing punctuation).
    pub message: String,
    /// Source location of the problem.
    pub span: Span,
}

impl LangError {
    /// Creates an error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> LangError {
        LangError {
            message: message.into(),
            span,
        }
    }

    /// Renders the error with line/column and the offending source line.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdes_lang::error::LangError;
    /// use mdes_lang::token::Span;
    ///
    /// let src = "resource M;\nresourc X;";
    /// let err = LangError::new("unknown keyword `resourc`", Span::new(12, 19));
    /// let rendered = err.render(src);
    /// assert!(rendered.contains("line 2"));
    /// assert!(rendered.contains("resourc X;"));
    /// ```
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        let text = source.lines().nth(line - 1).unwrap_or("");
        let caret_pad = " ".repeat(col.saturating_sub(1));
        let caret_len = (self.span.end - self.span.start).clamp(1, text.len().max(1));
        let carets = "^".repeat(caret_len.min(text.len().saturating_sub(col - 1)).max(1));
        format!(
            "error: {} (line {line}, column {col})\n  | {text}\n  | {caret_pad}{carets}",
            self.message
        )
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at bytes {}..{}",
            self.message, self.span.start, self.span.end
        )
    }
}

impl std::error::Error for LangError {}

impl From<mdes_core::MdesError> for LangError {
    fn from(err: mdes_core::MdesError) -> LangError {
        LangError::new(err.to_string(), Span::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_offending_text() {
        let src = "let x = ;";
        let err = LangError::new("expected expression", Span::new(8, 9));
        let out = err.render(src);
        assert!(out.contains("expected expression"));
        assert!(out.contains("line 1, column 9"));
        assert!(out.contains("let x = ;"));
    }

    #[test]
    fn render_survives_span_past_eof() {
        let err = LangError::new("unexpected end of input", Span::new(100, 101));
        let out = err.render("short");
        assert!(out.contains("unexpected end of input"));
    }

    #[test]
    fn core_errors_convert() {
        let core = mdes_core::MdesError::NoClasses;
        let lang: LangError = core.into();
        assert!(lang.message.contains("no operation classes"));
    }
}
