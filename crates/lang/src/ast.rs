//! Abstract syntax of HMDL, the high-level machine description language.
//!
//! A description is a sequence of items:
//!
//! ```text
//! let N = 4;                      // integer constant
//! resource Decoder[3];            // indexed resource family
//! resource M;                     // single resource
//! option UseM = { M @ 0 };        // named (shared) reservation option
//! or_tree AnyDec = first_of(for d in 0..3: { Decoder[d] @ -1 });
//! or_tree RpPair = first_of(for i in 0..N, j in 0..N if j > i:
//!                            { RP[i] @ -1, RP[j] @ -1 });
//! and_or_tree Load = all_of(UseM, AnyWrPt, AnyDec);
//! class load { constraint = Load; latency = 1; flags = load; }
//! ```
//!
//! `for` comprehensions expand at elaboration time into enumerated options
//! — the high-level convenience the paper notes can introduce redundant
//! options that the Section-5 transformations later clean up.

use crate::token::Span;

/// Unary integer operators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
}

/// Binary integer/boolean operators (booleans are 0/1 integers).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating; division by zero is an elaboration error)
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// An integer expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Literal.
    Int(i64, Span),
    /// Reference to a `let` constant or `for` variable.
    Var(String, Span),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, Span),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>, Span),
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s) | Expr::Var(_, s) | Expr::Unary(_, _, s) | Expr::Binary(_, _, _, s) => {
                *s
            }
        }
    }
}

/// A reference to a resource: `M` or `Decoder[i]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceRef {
    /// Base name.
    pub name: String,
    /// Optional index expression for indexed families.
    pub index: Option<Expr>,
    /// Source span.
    pub span: Span,
}

/// One usage inside an option body: `Decoder[i] @ -1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UsageAst {
    /// The resource used.
    pub resource: ResourceRef,
    /// Usage time expression.
    pub time: Expr,
}

/// An inline option body: `{ usage, usage, ... }`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptionBody {
    /// The usages in written (check) order.
    pub usages: Vec<UsageAst>,
    /// Source span.
    pub span: Span,
}

/// One `for` binding: `name in lo..hi`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForBinding {
    /// Loop variable name.
    pub var: String,
    /// Inclusive lower bound.
    pub lo: Expr,
    /// Exclusive upper bound.
    pub hi: Expr,
}

/// An element of a `first_of(...)` list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrItem {
    /// A fresh inline option.
    Inline(OptionBody),
    /// A reference to a named option (author-specified sharing).
    Named(String, Span),
    /// A comprehension generating options in lexicographic binding order.
    For {
        /// Bindings, later ones may reference earlier variables.
        bindings: Vec<ForBinding>,
        /// Optional filter; combinations evaluating to 0 are skipped.
        guard: Option<Expr>,
        /// Item instantiated per combination.
        body: Box<OrItem>,
        /// Source span.
        span: Span,
    },
}

/// The right-hand side of an `or_tree` declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrTreeBody {
    /// `first_of(item, item, ...)` — explicit prioritized options.
    FirstOf(Vec<OrItem>),
    /// `cross(A, B, ...)` — the lexicographic cross product of named
    /// OR-trees, first tree outermost.  This is how a traditional
    /// (pure OR) description enumerates independent choices.
    Cross(Vec<(String, Span)>, Span),
}

/// Operation class fields.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassBody {
    /// Name of the constraint tree (`and_or_tree` or `or_tree`).
    pub constraint: Option<(String, Span)>,
    /// Result latency (default 1).
    pub latency: Option<Expr>,
    /// Memory-dependence latency (default: same as `latency`).
    pub mem_latency: Option<Expr>,
    /// Source-operand read time (default 0).
    pub src_time: Option<Expr>,
    /// Flag names: `load`, `store`, `branch`, `serial`.
    pub flags: Vec<(String, Span)>,
}

/// A top-level item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Item {
    /// `let name = expr;`
    Let {
        /// Constant name.
        name: String,
        /// Value expression.
        value: Expr,
        /// Source span.
        span: Span,
    },
    /// `resource name;` or `resource name[count];`
    Resource {
        /// Base name.
        name: String,
        /// Family size (None = single resource).
        count: Option<Expr>,
        /// Source span.
        span: Span,
    },
    /// `option name = { ... };`
    Option {
        /// Option name.
        name: String,
        /// Usages.
        body: OptionBody,
        /// Source span.
        span: Span,
    },
    /// `or_tree name = first_of(...)|cross(...);`
    OrTree {
        /// Tree name.
        name: String,
        /// Body.
        body: OrTreeBody,
        /// Source span.
        span: Span,
    },
    /// `and_or_tree name = all_of(t1, t2, ...);`
    AndOrTree {
        /// Tree name.
        name: String,
        /// Referenced OR-tree names, in check order.
        trees: Vec<(String, Span)>,
        /// Source span.
        span: Span,
    },
    /// `op NAME, NAME, ... = class;`
    Opcode {
        /// Mnemonics being mapped.
        names: Vec<(String, Span)>,
        /// Target class name.
        class: (String, Span),
        /// Source span.
        span: Span,
    },
    /// `bypass producer, consumer = latency;`
    Bypass {
        /// Producing class name.
        producer: (String, Span),
        /// Consuming class name.
        consumer: (String, Span),
        /// Flow latency expression for the pair.
        latency: Expr,
        /// Source span.
        span: Span,
    },
    /// `class name { ... }`
    Class {
        /// Class name.
        name: String,
        /// Fields.
        body: ClassBody,
        /// Source span.
        span: Span,
    },
}

/// A parsed HMDL description.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// Items in source order (declare-before-use).
    pub items: Vec<Item>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_span_is_accessible_for_all_variants() {
        let s = Span::new(1, 2);
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Int(1, s)),
            Box::new(Expr::Var("x".into(), s)),
            Span::new(1, 5),
        );
        assert_eq!(e.span(), Span::new(1, 5));
        assert_eq!(
            Expr::Unary(UnOp::Neg, Box::new(Expr::Int(1, s)), s).span(),
            s
        );
    }
}
