//! The HMDL lexer.

use crate::error::LangError;
use crate::token::{Span, Token, TokenKind};

/// Tokenizes HMDL source, skipping whitespace, `//` line comments and
/// `/* ... */` block comments.
///
/// # Errors
///
/// Returns a [`LangError`] on unknown characters, malformed numbers and
/// unterminated comments or strings.
///
/// # Examples
///
/// ```
/// use mdes_lang::lexer::lex;
/// use mdes_lang::token::TokenKind;
///
/// let tokens = lex("resource Decoder[3]; // three decode slots").unwrap();
/// assert_eq!(tokens[0].kind, TokenKind::Resource);
/// assert_eq!(tokens[1].kind, TokenKind::Ident("Decoder".into()));
/// assert_eq!(tokens.last().unwrap().kind, TokenKind::Eof);
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;

    while i < bytes.len() {
        let start = i;
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if depth > 0 {
                    return Err(LangError::new(
                        "unterminated block comment",
                        Span::new(start, bytes.len()),
                    ));
                }
            }
            '0'..='9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                let value: i64 = text.parse().map_err(|_| {
                    LangError::new(
                        format!("integer literal `{text}` out of range"),
                        Span::new(start, i),
                    )
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    span: Span::new(start, i),
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &source[start..i];
                let kind = match text {
                    "let" => TokenKind::Let,
                    "resource" => TokenKind::Resource,
                    "option" => TokenKind::Option,
                    "or_tree" => TokenKind::OrTree,
                    "and_or_tree" => TokenKind::AndOrTree,
                    "class" => TokenKind::Class,
                    "op" => TokenKind::Op,
                    "bypass" => TokenKind::Bypass,
                    "first_of" => TokenKind::FirstOf,
                    "all_of" => TokenKind::AllOf,
                    "cross" => TokenKind::Cross,
                    "for" => TokenKind::For,
                    "in" => TokenKind::In,
                    "if" => TokenKind::If,
                    _ => TokenKind::Ident(text.to_string()),
                };
                tokens.push(Token {
                    kind,
                    span: Span::new(start, i),
                });
            }
            '"' => {
                i += 1;
                let text_start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(LangError::new(
                        "unterminated string literal",
                        Span::new(start, bytes.len()),
                    ));
                }
                tokens.push(Token {
                    kind: TokenKind::Str(source[text_start..i].to_string()),
                    span: Span::new(start, i + 1),
                });
                i += 1;
            }
            _ => {
                // Non-ASCII input cannot start any HMDL token; decode the
                // full character for the diagnostic (slicing by bytes
                // would split multi-byte UTF-8).
                if !c.is_ascii() {
                    let full = source[start..].chars().next().unwrap_or('\u{FFFD}');
                    return Err(LangError::new(
                        format!("unexpected character `{full}`"),
                        Span::new(start, start + full.len_utf8()),
                    ));
                }
                let two = source.get(i..i + 2).unwrap_or("");
                let (kind, len) = match two {
                    ".." => (TokenKind::DotDot, 2),
                    "==" => (TokenKind::EqEq, 2),
                    "!=" => (TokenKind::NotEq, 2),
                    "<=" => (TokenKind::Le, 2),
                    ">=" => (TokenKind::Ge, 2),
                    "&&" => (TokenKind::AndAnd, 2),
                    "||" => (TokenKind::OrOr, 2),
                    _ => match c {
                        '=' => (TokenKind::Eq, 1),
                        ';' => (TokenKind::Semi, 1),
                        ',' => (TokenKind::Comma, 1),
                        '{' => (TokenKind::LBrace, 1),
                        '}' => (TokenKind::RBrace, 1),
                        '(' => (TokenKind::LParen, 1),
                        ')' => (TokenKind::RParen, 1),
                        '[' => (TokenKind::LBracket, 1),
                        ']' => (TokenKind::RBracket, 1),
                        '@' => (TokenKind::At, 1),
                        ':' => (TokenKind::Colon, 1),
                        '|' => (TokenKind::Pipe, 1),
                        '+' => (TokenKind::Plus, 1),
                        '-' => (TokenKind::Minus, 1),
                        '*' => (TokenKind::Star, 1),
                        '/' => (TokenKind::Slash, 1),
                        '%' => (TokenKind::Percent, 1),
                        '<' => (TokenKind::Lt, 1),
                        '>' => (TokenKind::Gt, 1),
                        other => {
                            return Err(LangError::new(
                                format!("unexpected character `{other}`"),
                                Span::new(start, start + other.len_utf8()),
                            ));
                        }
                    },
                };
                i += len;
                tokens.push(Token {
                    kind,
                    span: Span::new(start, i),
                });
            }
        }
    }

    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(bytes.len(), bytes.len()),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_identifiers() {
        assert_eq!(
            kinds("or_tree Load ="),
            vec![
                TokenKind::OrTree,
                TokenKind::Ident("Load".into()),
                TokenKind::Eq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers_and_operators() {
        assert_eq!(
            kinds("0..12 <= >= == != && ||"),
            vec![
                TokenKind::Int(0),
                TokenKind::DotDot,
                TokenKind::Int(12),
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        let src = "a // comment\n /* block /* nested */ still */ b";
        assert_eq!(
            kinds(src),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        let err = lex("x /* never closed").unwrap_err();
        assert!(err.message.contains("unterminated block comment"));
    }

    #[test]
    fn string_literals() {
        assert_eq!(
            kinds("\"hello world\""),
            vec![TokenKind::Str("hello world".into()), TokenKind::Eof]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn rejects_unknown_characters_with_span() {
        let err = lex("resource M; #").unwrap_err();
        assert!(err.message.contains('#'));
        assert_eq!(err.span.start, 12);
    }

    #[test]
    fn usage_syntax_tokens() {
        assert_eq!(
            kinds("{ Decoder[2] @ -1 }"),
            vec![
                TokenKind::LBrace,
                TokenKind::Ident("Decoder".into()),
                TokenKind::LBracket,
                TokenKind::Int(2),
                TokenKind::RBracket,
                TokenKind::At,
                TokenKind::Minus,
                TokenKind::Int(1),
                TokenKind::RBrace,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let tokens = lex("ab cd").unwrap();
        assert_eq!(tokens[0].span, Span::new(0, 2));
        assert_eq!(tokens[1].span, Span::new(3, 5));
        assert_eq!(tokens[2].span, Span::new(5, 5));
    }

    #[test]
    fn rejects_out_of_range_integers() {
        let err = lex("99999999999999999999999").unwrap_err();
        assert!(err.message.contains("out of range"));
    }
}
