//! Printing an `MdesSpec` back to flat HMDL source.
//!
//! The printer emits every pool option as a named `option`, every OR-tree
//! as a `first_of` over those names, and so on — so author-specified (and
//! transformation-created) sharing survives a print → parse round trip.
//! Generated names are positional (`o0`, `t1`, `a2`); class names are
//! preserved.  Round-tripping therefore preserves *structure*, which
//! [`structurally_equal`] compares (ignoring item names).

use std::fmt::Write as _;

use mdes_core::spec::{Constraint, MdesSpec};

use crate::error::LangError;
use crate::token::Span;

/// Renders `spec` as parseable HMDL source.
///
/// # Errors
///
/// Returns an error if a resource or class name cannot be represented in
/// HMDL (it is not an identifier, and for resources not an
/// `identifier[index]` family member covering `0..n`).
///
/// # Examples
///
/// ```
/// let spec = mdes_lang::compile(
///     "resource M;\n\
///      or_tree T = first_of({ M @ 0 });\n\
///      class oper { constraint = T; }",
/// ).unwrap();
/// let printed = mdes_lang::print(&spec).unwrap();
/// let reparsed = mdes_lang::compile(&printed).unwrap();
/// assert!(mdes_lang::structurally_equal(&spec, &reparsed));
/// ```
pub fn print(spec: &MdesSpec) -> Result<String, LangError> {
    let mut out = String::new();

    print_resources(spec, &mut out)?;

    for id in spec.option_ids() {
        let _ = write!(out, "option o{} = {{ ", id.index());
        let usages = &spec.option(id).usages;
        for (i, usage) in usages.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{} @ {}",
                spec.resources().name(usage.resource),
                usage.time
            );
        }
        out.push_str(" };\n");
    }

    for id in spec.or_tree_ids() {
        let _ = write!(out, "or_tree t{} = first_of(", id.index());
        for (i, opt) in spec.or_tree(id).options.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "o{}", opt.index());
        }
        out.push_str(");\n");
    }

    for id in spec.and_or_tree_ids() {
        let _ = write!(out, "and_or_tree a{} = all_of(", id.index());
        for (i, or) in spec.and_or_tree(id).or_trees.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "t{}", or.index());
        }
        out.push_str(");\n");
    }

    for id in spec.class_ids() {
        let class = spec.class(id);
        check_ident(&class.name)?;
        let constraint = match class.constraint {
            Constraint::Or(or) => format!("t{}", or.index()),
            Constraint::AndOr(andor) => format!("a{}", andor.index()),
        };
        let _ = write!(
            out,
            "class {} {{ constraint = {constraint}; latency = {}; mem_latency = {};",
            class.name, class.latency.dest, class.latency.mem
        );
        if class.latency.src != 0 {
            let _ = write!(out, " src_time = {};", class.latency.src);
        }
        let mut flags = Vec::new();
        if class.flags.serial {
            flags.push("serial");
        }
        if class.flags.load {
            flags.push("load");
        }
        if class.flags.store {
            flags.push("store");
        }
        if class.flags.branch && !class.flags.serial {
            flags.push("branch");
        }
        if !flags.is_empty() {
            let _ = write!(out, " flags = {};", flags.join(" | "));
        }
        out.push_str(" }\n");
    }

    for (mnemonic, class) in spec.opcodes() {
        check_ident(mnemonic)?;
        let _ = writeln!(out, "op {mnemonic} = {};", spec.class(*class).name);
    }

    for (producer, consumer, latency) in spec.bypasses() {
        let _ = writeln!(
            out,
            "bypass {}, {} = {latency};",
            spec.class(*producer).name,
            spec.class(*consumer).name
        );
    }

    Ok(out)
}

/// Emits resource declarations, re-grouping `base[i]` families.
fn print_resources(spec: &MdesSpec, out: &mut String) -> Result<(), LangError> {
    let names: Vec<&str> = spec.resources().iter().map(|(_, n)| n).collect();
    let mut i = 0;
    while i < names.len() {
        let name = names[i];
        match split_indexed(name) {
            None => {
                check_ident(name)?;
                let _ = writeln!(out, "resource {name};");
                i += 1;
            }
            Some((base, first_idx)) => {
                check_ident(base)?;
                if first_idx != 0 {
                    return Err(unprintable(name));
                }
                // Count the contiguous run base[0], base[1], ...
                let mut count = 0;
                while i + count < names.len()
                    && split_indexed(names[i + count]) == Some((base, count))
                {
                    count += 1;
                }
                if count == 0 {
                    return Err(unprintable(name));
                }
                let _ = writeln!(out, "resource {base}[{count}];");
                i += count;
            }
        }
    }
    Ok(())
}

/// Splits `base[idx]` into its parts, if the name has that shape.
fn split_indexed(name: &str) -> Option<(&str, usize)> {
    let open = name.find('[')?;
    let close = name.strip_suffix(']')?;
    let idx: usize = close.get(open + 1..)?.parse().ok()?;
    Some((&name[..open], idx))
}

fn check_ident(name: &str) -> Result<(), LangError> {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        Ok(())
    } else {
        Err(unprintable(name))
    }
}

fn unprintable(name: &str) -> LangError {
    LangError::new(
        format!("name `{name}` cannot be printed as HMDL"),
        Span::default(),
    )
}

/// True if two specs are structurally identical: same resources (names and
/// order), options (usages), OR-trees (option-id lists), AND/OR-trees and
/// classes — ignoring option/tree *names*, which the printer regenerates.
pub fn structurally_equal(a: &MdesSpec, b: &MdesSpec) -> bool {
    if a.resources() != b.resources()
        || a.num_options() != b.num_options()
        || a.num_or_trees() != b.num_or_trees()
        || a.num_and_or_trees() != b.num_and_or_trees()
        || a.num_classes() != b.num_classes()
    {
        return false;
    }
    for id in a.option_ids() {
        if a.option(id).usages != b.option(id).usages {
            return false;
        }
    }
    for id in a.or_tree_ids() {
        if a.or_tree(id).options != b.or_tree(id).options {
            return false;
        }
    }
    for id in a.and_or_tree_ids() {
        if a.and_or_tree(id).or_trees != b.and_or_tree(id).or_trees {
            return false;
        }
    }
    for id in a.class_ids() {
        let (ca, cb) = (a.class(id), b.class(id));
        if ca.name != cb.name
            || ca.constraint != cb.constraint
            || ca.latency != cb.latency
            || ca.flags != cb.flags
        {
            return false;
        }
    }
    a.opcodes() == b.opcodes() && a.bypasses() == b.bypasses()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::compile;

    const DEMO: &str = "
        resource Decoder[3];
        resource M;
        resource WrPt[2];
        option UseM = { M @ 0 };
        or_tree Mem = first_of(UseM);
        or_tree AnyWr = first_of(for w in 0..2: { WrPt[w] @ 1 });
        or_tree AnyDec = first_of(for d in 0..3: { Decoder[d] @ -1 });
        and_or_tree Load = all_of(Mem, AnyWr, AnyDec);
        class load { constraint = Load; latency = 1; flags = load; }
        class branch { constraint = AnyDec; flags = branch; }
    ";

    #[test]
    fn print_parse_round_trip_is_structurally_identical() {
        let spec = compile(DEMO).unwrap();
        let printed = print(&spec).unwrap();
        let reparsed = compile(&printed).unwrap();
        assert!(structurally_equal(&spec, &reparsed), "printed:\n{printed}");
    }

    #[test]
    fn printer_groups_resource_families() {
        let spec = compile(DEMO).unwrap();
        let printed = print(&spec).unwrap();
        assert!(printed.contains("resource Decoder[3];"));
        assert!(printed.contains("resource M;"));
        assert!(printed.contains("resource WrPt[2];"));
    }

    #[test]
    fn printer_preserves_sharing() {
        let spec = compile(DEMO).unwrap();
        let reparsed = compile(&print(&spec).unwrap()).unwrap();
        // UseM is referenced by one tree; AnyDec shared by an AND/OR tree
        // and a class — counts must survive.
        assert_eq!(spec.num_options(), reparsed.num_options());
        let shares_a = spec.or_tree_share_counts();
        let shares_b = reparsed.or_tree_share_counts();
        assert_eq!(shares_a, shares_b);
    }

    #[test]
    fn printer_emits_negative_times() {
        let spec = compile(DEMO).unwrap();
        let printed = print(&spec).unwrap();
        assert!(printed.contains("@ -1"));
    }

    #[test]
    fn structural_equality_detects_differences() {
        let a = compile(DEMO).unwrap();
        let mut b = compile(DEMO).unwrap();
        let first = b.option_ids().next().unwrap();
        b.option_mut(first).usages[0].time += 1;
        assert!(!structurally_equal(&a, &b));
    }

    #[test]
    fn unprintable_resource_name_is_an_error() {
        let mut spec = mdes_core::MdesSpec::new();
        spec.resources_mut().add("weird name!").unwrap();
        let err = print(&spec).unwrap_err();
        assert!(err.message.contains("cannot be printed"));
    }

    #[test]
    fn opcodes_round_trip_through_print() {
        let src = "
            resource M;
            or_tree T = first_of({ M @ 0 });
            class mem { constraint = T; flags = load; }
            op LD = mem;
            op ST = mem;
        ";
        let spec = compile(src).unwrap();
        let printed = print(&spec).unwrap();
        assert!(printed.contains("op LD = mem;"));
        let reparsed = compile(&printed).unwrap();
        assert!(structurally_equal(&spec, &reparsed));
    }

    #[test]
    fn flags_round_trip_through_print() {
        let src = "
            resource M;
            or_tree T = first_of({ M @ 0 });
            class sync { constraint = T; flags = serial; }
            class st { constraint = T; flags = store; }
        ";
        let spec = compile(src).unwrap();
        let reparsed = compile(&print(&spec).unwrap()).unwrap();
        assert!(structurally_equal(&spec, &reparsed));
        let sync = reparsed.class(reparsed.class_by_name("sync").unwrap());
        assert!(sync.flags.serial && sync.flags.branch);
    }
}
