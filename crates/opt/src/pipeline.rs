//! The full MDES transformation pipeline.
//!
//! Applies the paper's transformations in presentation order:
//!
//! 1. redundancy elimination (Section 5);
//! 2. dominated-option elimination (Section 5);
//! 3. usage-time shifting (Section 7);
//! 4. check ordering, time zero first (Section 7);
//! 5. AND/OR-tree conflict-detection ordering (Section 8);
//! 6. common-usage factoring (Section 8);
//!
//! followed by a cleanup round (redundancy + check ordering) because
//! factoring clones shared items and appends hoisted usages.
//!
//! Every stage preserves the exact schedule the description produces —
//! "the exact same schedule is produced in each case, since all the
//! execution constraints described in the machine descriptions are being
//! preserved" (Section 4) — which the integration tests assert per
//! machine and per stage.

use mdes_core::spec::MdesSpec;
use mdes_telemetry::Telemetry;

use crate::dominance::{eliminate_dominated_options, DominanceReport};
use crate::factor::{factor_common_usages, FactorReport};
use crate::redundancy::{eliminate_redundancy, RedundancyReport};
use crate::sortzero::{sort_checks_zero_first, SortReport};
use crate::timeshift::{shift_usage_times, Direction, TimeShiftReport};
use crate::treesort::{sort_and_or_trees, TreeSortReport};

/// Which transformations to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Scheduler direction for the time-shift / check-order heuristics.
    pub direction: Direction,
    /// Run redundancy elimination.
    pub redundancy: bool,
    /// Run dominated-option elimination.
    pub dominance: bool,
    /// Run usage-time shifting.
    pub timeshift: bool,
    /// Run check ordering.
    pub sortzero: bool,
    /// Run AND/OR-tree ordering.
    pub treesort: bool,
    /// Run common-usage factoring.
    pub factor: bool,
}

impl PipelineConfig {
    /// Everything on, forward scheduling (the paper's configuration).
    pub fn full() -> PipelineConfig {
        PipelineConfig {
            direction: Direction::Forward,
            redundancy: true,
            dominance: true,
            timeshift: true,
            sortzero: true,
            treesort: true,
            factor: true,
        }
    }

    /// Only the Section-5 cleanups (for the Table 7/8 experiments).
    pub fn section5() -> PipelineConfig {
        PipelineConfig {
            factor: false,
            treesort: false,
            timeshift: false,
            sortzero: false,
            ..PipelineConfig::full()
        }
    }

    /// Sections 5 + 7 (for the Table 11/12 experiments).
    pub fn through_section7() -> PipelineConfig {
        PipelineConfig {
            factor: false,
            treesort: false,
            ..PipelineConfig::full()
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig::full()
    }
}

/// One transformation stage, in the paper's presentation order.
///
/// The pipeline and the stage guard share this plan: [`optimize`] runs
/// the stages of [`stage_plan`] back to back, while a guarded run
/// snapshots the spec around each [`run_stage`] call so a misbehaving
/// stage can be rolled back in isolation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum StageId {
    /// Redundancy elimination (Section 5).
    Redundancy,
    /// Dominated-option elimination (Section 5).
    Dominance,
    /// Usage-time shifting (Section 7).
    TimeShift,
    /// Check ordering, time zero first (Section 7).
    SortZero,
    /// AND/OR-tree conflict-detection ordering (Section 8).
    TreeSort,
    /// Common-usage factoring plus its cleanup round (Section 8).
    Factor,
}

impl StageId {
    /// All stages in pipeline order.
    pub fn all() -> [StageId; 6] {
        [
            StageId::Redundancy,
            StageId::Dominance,
            StageId::TimeShift,
            StageId::SortZero,
            StageId::TreeSort,
            StageId::Factor,
        ]
    }

    /// The stage's telemetry / diagnostic name (`pipeline/<name>` spans).
    pub fn name(self) -> &'static str {
        match self {
            StageId::Redundancy => "redundancy",
            StageId::Dominance => "dominance",
            StageId::TimeShift => "shifting",
            StageId::SortZero => "sortzero",
            StageId::TreeSort => "treesort",
            StageId::Factor => "factor",
        }
    }
}

impl std::fmt::Display for StageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The stages `config` enables, in execution order.
pub fn stage_plan(config: &PipelineConfig) -> Vec<StageId> {
    StageId::all()
        .into_iter()
        .filter(|stage| match stage {
            StageId::Redundancy => config.redundancy,
            StageId::Dominance => config.dominance,
            StageId::TimeShift => config.timeshift,
            StageId::SortZero => config.sortzero,
            StageId::TreeSort => config.treesort,
            StageId::Factor => config.factor,
        })
        .collect()
}

/// Per-stage results of one pipeline run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineReport {
    /// First redundancy pass.
    pub redundancy: Option<RedundancyReport>,
    /// Dominated-option elimination.
    pub dominance: Option<DominanceReport>,
    /// Usage-time shifting.
    pub timeshift: Option<TimeShiftReport>,
    /// Check ordering.
    pub sortzero: Option<SortReport>,
    /// AND/OR-tree ordering.
    pub treesort: Option<TreeSortReport>,
    /// Common-usage factoring.
    pub factor: Option<FactorReport>,
    /// Cleanup redundancy pass after factoring.
    pub cleanup: Option<RedundancyReport>,
}

/// Total resource usages across every option — the paper's primary size
/// metric for a description ("number of options/resource usages").
fn total_usages(spec: &MdesSpec) -> usize {
    spec.option_ids()
        .map(|id| spec.option(id).usages.len())
        .sum()
}

/// Records `options/…` and `usages/…` gauges under `stage` for one
/// transformation, sampling the spec before and after `run`.
fn staged<R>(
    spec: &mut MdesSpec,
    tel: &Telemetry,
    stage: &str,
    run: impl FnOnce(&mut MdesSpec) -> R,
) -> R {
    let (options_before, usages_before) = (spec.num_options(), total_usages(spec));
    let result = {
        let _span = tel.span(stage);
        run(spec)
    };
    tel.gauge_set(
        &format!("pipeline/{stage}/options/before"),
        options_before as f64,
    );
    tel.gauge_set(
        &format!("pipeline/{stage}/options/after"),
        spec.num_options() as f64,
    );
    tel.gauge_set(
        &format!("pipeline/{stage}/usages/before"),
        usages_before as f64,
    );
    tel.gauge_set(
        &format!("pipeline/{stage}/usages/after"),
        total_usages(spec) as f64,
    );
    result
}

/// Runs the configured transformations on `spec` in the paper's order.
pub fn optimize(spec: &mut MdesSpec, config: &PipelineConfig) -> PipelineReport {
    optimize_with_telemetry(spec, config, &Telemetry::disabled())
}

/// [`optimize`] with per-stage spans (`pipeline/redundancy`,
/// `pipeline/dominance`, `pipeline/shifting`, …) and before/after
/// option/usage-count gauges recorded into `tel`.
pub fn optimize_with_telemetry(
    spec: &mut MdesSpec,
    config: &PipelineConfig,
    tel: &Telemetry,
) -> PipelineReport {
    let mut report = PipelineReport::default();
    let _pipeline = tel.span("pipeline");
    tel.gauge_set("pipeline/options/before", spec.num_options() as f64);
    tel.gauge_set("pipeline/usages/before", total_usages(spec) as f64);

    for stage in stage_plan(config) {
        run_stage(spec, stage, config, &mut report, tel);
    }

    tel.gauge_set("pipeline/options/after", spec.num_options() as f64);
    tel.gauge_set("pipeline/usages/after", total_usages(spec) as f64);

    debug_assert!(spec.validate().is_ok(), "pipeline broke the spec");
    report
}

/// Runs a single pipeline stage, recording its result into `report` and
/// its spans/gauges into `tel`.
///
/// [`StageId::Factor`] includes the conditional cleanup round
/// (redundancy, check ordering, and tree ordering) as one atomic unit,
/// because factoring clones shared items and appends hoisted usages that
/// the cleanup re-normalizes — a half-applied factor stage is not a state
/// the pipeline ever exposes.
pub fn run_stage(
    spec: &mut MdesSpec,
    stage: StageId,
    config: &PipelineConfig,
    report: &mut PipelineReport,
    tel: &Telemetry,
) {
    match stage {
        StageId::Redundancy => {
            report.redundancy = Some(staged(spec, tel, "redundancy", eliminate_redundancy));
        }
        StageId::Dominance => {
            report.dominance = Some(staged(spec, tel, "dominance", eliminate_dominated_options));
        }
        StageId::TimeShift => {
            report.timeshift = Some(staged(spec, tel, "shifting", |s| {
                shift_usage_times(s, config.direction)
            }));
        }
        StageId::SortZero => {
            report.sortzero = Some(staged(spec, tel, "sortzero", |s| {
                sort_checks_zero_first(s, config.direction)
            }));
        }
        StageId::TreeSort => {
            report.treesort = Some(staged(spec, tel, "treesort", sort_and_or_trees));
        }
        StageId::Factor => {
            let factor = staged(spec, tel, "factor", factor_common_usages);
            if factor.trees_affected > 0 {
                let _cleanup = tel.span("cleanup");
                if config.redundancy {
                    report.cleanup = Some(eliminate_redundancy(spec));
                }
                if config.sortzero {
                    sort_checks_zero_first(spec, config.direction);
                }
                if config.treesort {
                    sort_and_or_trees(spec);
                }
            }
            report.factor = Some(factor);
        }
    }
}

/// Convenience: clone, optimize with the full pipeline, return the copy.
pub fn optimized(spec: &MdesSpec) -> MdesSpec {
    let mut copy = spec.clone();
    optimize(&mut copy, &PipelineConfig::full());
    copy
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::spec::{AndOrTree, Constraint, Latency, OpFlags, OrTree, TableOption};
    use mdes_core::usage::ResourceUsage;
    use mdes_core::ResourceId;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    /// A deliberately messy description exercising every stage: duplicate
    /// options, a dominated option, shiftable usage times, unsorted
    /// checks, out-of-order AND/OR sub-trees and a factorable common
    /// usage.
    fn messy_spec() -> MdesSpec {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("Dec", 2).unwrap(); // r0 r1
        spec.resources_mut().add("Bus").unwrap(); // r2
        spec.resources_mut().add("M").unwrap(); // r3
        spec.resources_mut().add("Wr").unwrap(); // r4

        // Decoder tree with a duplicated option and common bus usage.
        let d0 = spec.add_option(TableOption::new(vec![u(0, -1), u(2, -1)]));
        let d0_dup = spec.add_option(TableOption::new(vec![u(0, -1), u(2, -1)]));
        let d1 = spec.add_option(TableOption::new(vec![u(1, -1), u(2, -1)]));
        let dec = spec.add_or_tree(OrTree::named("Dec", vec![d0, d0_dup, d1]));

        // Memory tree: one option, M at 0 and write port at 2 (unsorted
        // after shifting).
        let m = spec.add_option(TableOption::new(vec![u(4, 2), u(3, 0)]));
        let mem = spec.add_or_tree(OrTree::named("Mem", vec![m]));

        let load = spec.add_and_or_tree(AndOrTree::named("Load", vec![dec, mem]));
        spec.add_class(
            "load",
            Constraint::AndOr(load),
            Latency::new(1),
            OpFlags::load(),
        )
        .unwrap();
        spec
    }

    #[test]
    fn full_pipeline_applies_every_stage() {
        let mut spec = messy_spec();
        let report = optimize(&mut spec, &PipelineConfig::full());

        let redundancy = report.redundancy.unwrap();
        assert_eq!(redundancy.options_merged, 1);
        let dominance = report.dominance.unwrap();
        assert_eq!(dominance.options_removed, 1);
        let timeshift = report.timeshift.unwrap();
        assert!(timeshift.resources_shifted() >= 2); // decoders, bus at -1
        assert!(report.treesort.is_some());
        let factor = report.factor.unwrap();
        assert!(factor.usages_merged + factor.trees_created > 0);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn pipeline_is_idempotent() {
        let mut spec = messy_spec();
        optimize(&mut spec, &PipelineConfig::full());
        let snapshot = spec.clone();
        optimize(&mut spec, &PipelineConfig::full());
        assert_eq!(spec, snapshot);
    }

    #[test]
    fn section5_config_leaves_usage_times_alone() {
        let mut spec = messy_spec();
        optimize(&mut spec, &PipelineConfig::section5());
        // Decoder usages still at -1: no time shift ran.
        let any_negative = spec
            .option_ids()
            .flat_map(|id| spec.option(id).usages.clone())
            .any(|us| us.time < 0);
        assert!(any_negative);
    }

    #[test]
    fn through_section7_runs_shift_but_not_factoring() {
        let mut spec = messy_spec();
        let report = optimize(&mut spec, &PipelineConfig::through_section7());
        assert!(report.timeshift.is_some());
        assert!(report.factor.is_none());
        // All usage times now >= 0.
        let all_non_negative = spec
            .option_ids()
            .flat_map(|id| spec.option(id).usages.clone())
            .all(|us| us.time >= 0);
        assert!(all_non_negative);
    }

    #[test]
    fn telemetry_records_a_span_and_gauges_per_stage() {
        let mut spec = messy_spec();
        let tel = Telemetry::new();
        optimize_with_telemetry(&mut spec, &PipelineConfig::full(), &tel);
        let report = tel.report();
        for stage in [
            "redundancy",
            "dominance",
            "shifting",
            "sortzero",
            "treesort",
            "factor",
        ] {
            assert!(
                report.span(&format!("pipeline/{stage}")).is_some(),
                "missing span for {stage}"
            );
            assert!(
                report
                    .gauge(&format!("pipeline/{stage}/options/before"))
                    .is_some(),
                "missing before gauge for {stage}"
            );
        }
        // Whole-pipeline gauges reflect the net shrink.
        let before = report.gauge("pipeline/options/before").unwrap();
        let after = report.gauge("pipeline/options/after").unwrap();
        assert!(after < before);
    }

    #[test]
    fn optimized_returns_a_fresh_spec() {
        let spec = messy_spec();
        let out = optimized(&spec);
        assert_ne!(out, spec);
        assert!(out.num_options() < spec.num_options());
        assert!(spec.validate().is_ok());
        assert!(out.validate().is_ok());
    }
}
