//! Conservative reservation-table minimization in the spirit of
//! Eichenberger & Davidson, *A reduced multipipeline machine description
//! that preserves scheduling constraints* (PLDI 1996) — the paper's
//! reference \[18\] and Section-10 comparison point.
//!
//! The full E&D algorithm synthesizes, per option, a fresh reservation
//! table with a minimum number of usages preserving all collision vectors.
//! We implement two *sound, conservative* subsets that preserve every
//! pairwise collision vector exactly:
//!
//! * **duplicate-usage removal** — a usage listed twice in one option
//!   contributes nothing;
//! * **equivalent-resource merging** — if two resources have identical
//!   usage-time multisets in *every* option of the description, their
//!   collision contributions are identical, so one of them can be dropped
//!   everywhere (the classic "column merging" of reservation-table
//!   theory).
//!
//! The ablation benchmark compares this against the paper's usage-time
//! transformation to show the two attack different inefficiencies: E&D
//! reduces checks *per option*, the paper additionally reduces *options
//! checked per attempt*.

use std::collections::HashMap;

use mdes_core::spec::MdesSpec;
use mdes_core::ResourceId;

/// What the minimizer removed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MinimizeReport {
    /// Duplicate usages removed within options.
    pub duplicate_usages_removed: usize,
    /// Resources merged away (their usages deleted everywhere).
    pub resources_merged: usize,
    /// Total usages removed by resource merging.
    pub merged_usages_removed: usize,
}

/// Applies duplicate-usage removal and equivalent-resource merging.
///
/// Both rewrites preserve every pairwise collision vector, hence every
/// legal schedule (verified by the property tests in `tests/`).
///
/// # Examples
///
/// ```
/// // `Stage` shadows `Pipe` in every option: a redundant column.
/// let mut spec = mdes_lang::compile("
///     resource Pipe;
///     resource Stage;
///     or_tree T = first_of({ Pipe @ 0, Stage @ 0 }, { Pipe @ 1, Stage @ 1 });
///     class mul { constraint = T; }
/// ").unwrap();
/// let report = mdes_opt::minimize_usages(&mut spec);
/// assert_eq!(report.resources_merged, 1);
/// ```
pub fn minimize_usages(spec: &mut MdesSpec) -> MinimizeReport {
    let mut report = MinimizeReport::default();

    // --- 1. Remove duplicate usages within each option. ---
    for id in spec.option_ids().collect::<Vec<_>>() {
        let usages = &mut spec.option_mut(id).usages;
        let mut seen = Vec::with_capacity(usages.len());
        usages.retain(|u| {
            if seen.contains(u) {
                report.duplicate_usages_removed += 1;
                false
            } else {
                seen.push(*u);
                true
            }
        });
    }

    // --- 2. Merge resources with identical usage patterns everywhere. ---
    // Signature: for each resource, the sorted list of (option, sorted
    // usage times) pairs over all options that use it.
    let mut signatures: HashMap<ResourceId, Vec<(usize, Vec<i32>)>> = HashMap::new();
    for id in spec.option_ids() {
        let mut per_resource: HashMap<ResourceId, Vec<i32>> = HashMap::new();
        for usage in &spec.option(id).usages {
            per_resource
                .entry(usage.resource)
                .or_default()
                .push(usage.time);
        }
        for (resource, mut times) in per_resource {
            times.sort_unstable();
            signatures
                .entry(resource)
                .or_default()
                .push((id.index(), times));
        }
    }
    for signature in signatures.values_mut() {
        signature.sort();
    }

    // Group resources by signature; keep the first of each group, drop
    // the rest.  Resources with no usages have no signature and are left
    // alone (they cost nothing).
    let mut canonical: HashMap<&[(usize, Vec<i32>)], ResourceId> = HashMap::new();
    let mut drop: Vec<ResourceId> = Vec::new();
    let mut resources: Vec<ResourceId> = signatures.keys().copied().collect();
    resources.sort_unstable();
    for resource in resources {
        let signature = signatures[&resource].as_slice();
        match canonical.get(signature) {
            Some(_) => drop.push(resource),
            None => {
                canonical.insert(signature, resource);
            }
        }
    }

    if !drop.is_empty() {
        report.resources_merged = drop.len();
        for id in spec.option_ids().collect::<Vec<_>>() {
            let usages = &mut spec.option_mut(id).usages;
            let before = usages.len();
            usages.retain(|u| !drop.contains(&u.resource));
            report.merged_usages_removed += before - usages.len();
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::collision::forbidden_latencies;
    use mdes_core::spec::{Constraint, Latency, OpFlags, OrTree, TableOption};
    use mdes_core::usage::ResourceUsage;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    fn wrap(mut spec: MdesSpec, options: Vec<TableOption>) -> MdesSpec {
        let ids: Vec<_> = options.into_iter().map(|o| spec.add_option(o)).collect();
        let tree = spec.add_or_tree(OrTree::new(ids));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        spec
    }

    #[test]
    fn duplicate_usages_inside_an_option_are_removed() {
        let mut base = MdesSpec::new();
        base.resources_mut().add("r").unwrap();
        let mut spec = wrap(
            base,
            vec![TableOption::new(vec![u(0, 0), u(0, 0), u(0, 1)])],
        );
        let report = minimize_usages(&mut spec);
        assert_eq!(report.duplicate_usages_removed, 1);
        assert_eq!(
            spec.option(spec.option_ids().next().unwrap()).usages,
            vec![u(0, 0), u(0, 1)]
        );
    }

    #[test]
    fn shadow_resource_is_merged_away() {
        // r0 and r1 always used together at identical times: classic
        // redundant column.
        let mut base = MdesSpec::new();
        base.resources_mut().add_indexed("r", 3).unwrap();
        let mut spec = wrap(
            base,
            vec![
                TableOption::new(vec![u(0, 0), u(1, 0), u(2, 1)]),
                TableOption::new(vec![u(0, 2), u(1, 2)]),
            ],
        );
        let before: Vec<_> = {
            let ids: Vec<_> = spec.option_ids().collect();
            ids.iter()
                .flat_map(|&a| {
                    ids.iter()
                        .map(|&b| forbidden_latencies(spec.option(a), spec.option(b)))
                        .collect::<Vec<_>>()
                })
                .collect()
        };

        let report = minimize_usages(&mut spec);
        assert_eq!(report.resources_merged, 1);
        assert_eq!(report.merged_usages_removed, 2);

        let after: Vec<_> = {
            let ids: Vec<_> = spec.option_ids().collect();
            ids.iter()
                .flat_map(|&a| {
                    ids.iter()
                        .map(|&b| forbidden_latencies(spec.option(a), spec.option(b)))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        assert_eq!(before, after, "collision vectors must be preserved");
    }

    #[test]
    fn resources_with_different_patterns_are_kept() {
        let mut base = MdesSpec::new();
        base.resources_mut().add_indexed("r", 2).unwrap();
        let mut spec = wrap(
            base,
            vec![
                TableOption::new(vec![u(0, 0), u(1, 0)]),
                TableOption::new(vec![u(0, 1)]), // r1 absent here
            ],
        );
        let report = minimize_usages(&mut spec);
        assert_eq!(report.resources_merged, 0);
    }

    #[test]
    fn minimizer_is_idempotent() {
        let mut base = MdesSpec::new();
        base.resources_mut().add_indexed("r", 3).unwrap();
        let mut spec = wrap(
            base,
            vec![TableOption::new(vec![u(0, 0), u(1, 0), u(0, 0), u(2, 1)])],
        );
        minimize_usages(&mut spec);
        let snapshot = spec.clone();
        let report = minimize_usages(&mut spec);
        assert_eq!(report, MinimizeReport::default());
        assert_eq!(spec, snapshot);
    }
}
