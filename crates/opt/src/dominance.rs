//! Dominated-option elimination (Section 5).
//!
//! "An option can be removed from an OR-tree if its resource usages are
//! identical to, or a superset of, the resource usages for a
//! higher-priority option, since the higher-priority option will always be
//! selected if these resources are available."
//!
//! The paper's motivating anecdote: during the PA7100 retargeting two
//! reservation-table options for memory operations became identical, and
//! "the MDES author never realized this since correct output was still
//! generated" — this pass finds exactly such cases (Table 8).

use mdes_core::spec::MdesSpec;

/// What dominated-option elimination removed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DominanceReport {
    /// Option references removed from OR-trees.
    pub options_removed: usize,
    /// OR-trees that had at least one dominated option.
    pub trees_affected: usize,
    /// Pool items freed by the follow-up dead-code sweep.
    pub items_swept: usize,
}

/// Removes every OR-tree option dominated by a higher-priority option.
///
/// Domination is context-free (a property of the tree alone), so editing
/// OR-trees shared by several AND/OR-trees is safe: the result is correct
/// for every referent.
///
/// # Examples
///
/// ```
/// let mut spec = mdes_lang::compile("
///     resource R[2];
///     // The second option needs a superset of the first's resources:
///     // it can never win.
///     or_tree T = first_of({ R[0] @ 0 }, { R[0] @ 0, R[1] @ 0 });
///     class alu { constraint = T; }
/// ").unwrap();
/// let report = mdes_opt::eliminate_dominated_options(&mut spec);
/// assert_eq!(report.options_removed, 1);
/// ```
pub fn eliminate_dominated_options(spec: &mut MdesSpec) -> DominanceReport {
    let mut report = DominanceReport::default();

    for tree_id in spec.or_tree_ids().collect::<Vec<_>>() {
        let options = spec.or_tree(tree_id).options.clone();
        let mut kept: Vec<mdes_core::OptionId> = Vec::with_capacity(options.len());
        for candidate in options {
            let dominated = kept
                .iter()
                .any(|&winner| spec.option(candidate).covers(spec.option(winner)));
            if dominated {
                report.options_removed += 1;
            } else {
                kept.push(candidate);
            }
        }
        if kept.len() != spec.or_tree(tree_id).options.len() {
            report.trees_affected += 1;
            spec.or_tree_mut(tree_id).options = kept;
        }
    }

    report.items_swept = spec.sweep_unreferenced().total();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::spec::{Constraint, Latency, OpFlags, OrTree, TableOption};
    use mdes_core::usage::ResourceUsage;
    use mdes_core::ResourceId;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    fn spec_with_tree(options: Vec<TableOption>) -> MdesSpec {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("r", 4).unwrap();
        let ids: Vec<_> = options.into_iter().map(|o| spec.add_option(o)).collect();
        let tree = spec.add_or_tree(OrTree::new(ids));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        spec
    }

    #[test]
    fn identical_lower_priority_option_is_removed() {
        // The PA7100 anecdote: a duplicated memory-op option.
        let mut spec = spec_with_tree(vec![
            TableOption::new(vec![u(0, 0)]),
            TableOption::new(vec![u(0, 0)]),
            TableOption::new(vec![u(1, 0)]),
        ]);
        let report = eliminate_dominated_options(&mut spec);
        assert_eq!(report.options_removed, 1);
        assert_eq!(report.trees_affected, 1);
        let tree = spec.or_tree(spec.or_tree_ids().next().unwrap());
        assert_eq!(tree.options.len(), 2);
    }

    #[test]
    fn superset_option_is_removed() {
        // Option 2 needs r0 and r1; option 1 needs only r0 and is higher
        // priority: option 2 can never win.
        let mut spec = spec_with_tree(vec![
            TableOption::new(vec![u(0, 0)]),
            TableOption::new(vec![u(0, 0), u(1, 0)]),
        ]);
        let report = eliminate_dominated_options(&mut spec);
        assert_eq!(report.options_removed, 1);
    }

    #[test]
    fn subset_in_lower_priority_is_kept() {
        // Reverse order: the smaller option is *lower* priority, which is
        // reachable (when r1 is busy the big option fails, small wins).
        let mut spec = spec_with_tree(vec![
            TableOption::new(vec![u(0, 0), u(1, 0)]),
            TableOption::new(vec![u(0, 0)]),
        ]);
        let report = eliminate_dominated_options(&mut spec);
        assert_eq!(report.options_removed, 0);
    }

    #[test]
    fn usage_order_does_not_hide_domination() {
        let mut spec = spec_with_tree(vec![
            TableOption::new(vec![u(0, 0), u(1, 1)]),
            TableOption::new(vec![u(1, 1), u(0, 0)]), // same set, reordered
        ]);
        let report = eliminate_dominated_options(&mut spec);
        assert_eq!(report.options_removed, 1);
    }

    #[test]
    fn distinct_options_survive() {
        let mut spec = spec_with_tree(vec![
            TableOption::new(vec![u(0, 0)]),
            TableOption::new(vec![u(1, 0)]),
            TableOption::new(vec![u(2, 0)]),
        ]);
        let report = eliminate_dominated_options(&mut spec);
        assert_eq!(report.options_removed, 0);
        assert_eq!(report.trees_affected, 0);
    }

    #[test]
    fn duplicate_references_after_merging_collapse() {
        // Redundancy elimination can leave one option referenced twice in
        // the same tree; the second reference is trivially dominated.
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("r").unwrap();
        let opt = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![opt, opt]));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        let report = eliminate_dominated_options(&mut spec);
        assert_eq!(report.options_removed, 1);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn swept_options_reported() {
        let mut spec = spec_with_tree(vec![
            TableOption::new(vec![u(0, 0)]),
            TableOption::new(vec![u(0, 0), u(1, 0)]),
        ]);
        let report = eliminate_dominated_options(&mut spec);
        assert_eq!(report.items_swept, 1);
        assert_eq!(spec.num_options(), 1);
    }
}
