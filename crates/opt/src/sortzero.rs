//! Check ordering: probe time zero first (Section 7).
//!
//! After the usage-time transformation, "the resource usages that cause
//! most of the resource conflicts now tend to be concentrated at time
//! zero.  The resource usages with times greater than zero are usually
//! conflict free and are primarily there to delay the execution of later
//! operations."  Sorting each option's checks so time zero is probed first
//! therefore minimizes the average number of checks before a conflict is
//! detected.

use mdes_core::spec::MdesSpec;

use crate::timeshift::Direction;

/// Report of one check-ordering pass.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SortReport {
    /// Options whose check order changed.
    pub options_reordered: usize,
}

/// Reorders each option's usages so time zero is checked first, then times
/// in increasing distance from the issue point (increasing for a forward
/// scheduler, decreasing for a backward one).  Stable, so equal-time
/// usages keep their written order.
///
/// # Examples
///
/// ```
/// use mdes_opt::sortzero::sort_checks_zero_first;
/// use mdes_opt::Direction;
///
/// let mut spec = mdes_lang::compile("
///     resource Div;
///     resource Bus;
///     or_tree T = first_of({ Div @ 2, Bus @ 0, Div @ 1 });
///     class div { constraint = T; latency = 3; }
/// ").unwrap();
/// sort_checks_zero_first(&mut spec, Direction::Forward);
/// let opt = spec.option_ids().next().unwrap();
/// let times: Vec<i32> = spec.option(opt).usages.iter().map(|u| u.time).collect();
/// assert_eq!(times, vec![0, 1, 2]);
/// ```
pub fn sort_checks_zero_first(spec: &mut MdesSpec, direction: Direction) -> SortReport {
    let mut report = SortReport::default();
    for id in spec.option_ids().collect::<Vec<_>>() {
        let usages = &mut spec.option_mut(id).usages;
        let before: Vec<i32> = usages.iter().map(|u| u.time).collect();
        usages.sort_by_key(|u| match direction {
            Direction::Forward => (u.time != 0, u.time),
            Direction::Backward => (u.time != 0, -u.time),
        });
        if usages.iter().map(|u| u.time).ne(before.iter().copied()) {
            report.options_reordered += 1;
        }
    }
    report
}

/// Options whose written check order differs from the order
/// [`sort_checks_zero_first`] would produce, in id order.
///
/// This is the read-only query behind the analyzer's missed-ordering
/// lint (`MD010`): it inspects without mutating, so a lint pass can ask
/// "what *would* the Section 7 transformation change?" against a spec it
/// does not own.
pub fn unsorted_options(spec: &MdesSpec, direction: Direction) -> Vec<mdes_core::spec::OptionId> {
    spec.option_ids()
        .filter(|&id| {
            let usages = &spec.option(id).usages;
            let key = |u: &mdes_core::usage::ResourceUsage| match direction {
                Direction::Forward => (u.time != 0, u.time),
                Direction::Backward => (u.time != 0, -u.time),
            };
            !usages.windows(2).all(|w| key(&w[0]) <= key(&w[1]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::spec::{Constraint, Latency, OpFlags, OrTree, TableOption};
    use mdes_core::usage::ResourceUsage;
    use mdes_core::ResourceId;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    fn spec_with_option(usages: Vec<ResourceUsage>) -> MdesSpec {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("r", 8).unwrap();
        let opt = spec.add_option(TableOption::new(usages));
        let tree = spec.add_or_tree(OrTree::new(vec![opt]));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        spec
    }

    #[test]
    fn forward_sort_puts_zero_first_then_ascending() {
        let mut spec = spec_with_option(vec![u(0, 2), u(1, 0), u(2, 1), u(3, 0)]);
        let report = sort_checks_zero_first(&mut spec, Direction::Forward);
        assert_eq!(report.options_reordered, 1);
        let times: Vec<i32> = spec
            .option(spec.option_ids().next().unwrap())
            .usages
            .iter()
            .map(|us| us.time)
            .collect();
        assert_eq!(times, vec![0, 0, 1, 2]);
    }

    #[test]
    fn forward_sort_is_stable_for_equal_times() {
        let mut spec = spec_with_option(vec![u(5, 0), u(1, 0), u(3, 0)]);
        sort_checks_zero_first(&mut spec, Direction::Forward);
        let resources: Vec<usize> = spec
            .option(spec.option_ids().next().unwrap())
            .usages
            .iter()
            .map(|us| us.resource.index())
            .collect();
        assert_eq!(resources, vec![5, 1, 3]);
    }

    #[test]
    fn backward_sort_puts_zero_first_then_descending() {
        let mut spec = spec_with_option(vec![u(0, -2), u(1, 0), u(2, -1)]);
        sort_checks_zero_first(&mut spec, Direction::Backward);
        let times: Vec<i32> = spec
            .option(spec.option_ids().next().unwrap())
            .usages
            .iter()
            .map(|us| us.time)
            .collect();
        assert_eq!(times, vec![0, -1, -2]);
    }

    #[test]
    fn already_sorted_option_is_not_counted() {
        let mut spec = spec_with_option(vec![u(0, 0), u(1, 1)]);
        let report = sort_checks_zero_first(&mut spec, Direction::Forward);
        assert_eq!(report.options_reordered, 0);
    }

    #[test]
    fn unsorted_query_agrees_with_the_sort_without_mutating() {
        let spec = spec_with_option(vec![u(0, 2), u(1, 0)]);
        let before = spec.clone();
        let flagged = unsorted_options(&spec, Direction::Forward);
        assert_eq!(flagged.len(), 1);
        assert_eq!(spec, before, "query must not mutate");

        let mut sorted = spec.clone();
        let report = sort_checks_zero_first(&mut sorted, Direction::Forward);
        assert_eq!(report.options_reordered, flagged.len());
        assert!(unsorted_options(&sorted, Direction::Forward).is_empty());
    }
}
