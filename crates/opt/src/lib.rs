//! MDES transformations — the bridge between the easy-to-maintain
//! high-level description and the efficient low-level representation
//! (Sections 5, 7 and 8 of Gyllenhaal, Hwu & Rau, MICRO-29 1996).
//!
//! The individual passes:
//!
//! * [`redundancy`] — CSE / copy propagation / dead-code removal adapted
//!   to the MDES domain;
//! * [`dominance`] — removal of OR-tree options that can never win;
//! * [`timeshift`] — the per-resource usage-time transformation;
//! * [`sortzero`] — probe time zero first;
//! * [`treesort`] — order AND/OR sub-trees for early conflict detection;
//! * [`factor`] — hoist usages common to all options of an OR-tree;
//! * [`expand`] — AND/OR → OR cross-product expansion (the traditional-
//!   representation baseline of every experiment);
//! * [`minimize`] — a conservative Eichenberger–Davidson-style
//!   reservation-table minimizer (related-work ablation);
//! * [`pipeline`] — the whole thing in the paper's order.
//!
//! # Example
//!
//! ```
//! use mdes_opt::pipeline::{optimize, PipelineConfig};
//!
//! let mut spec = mdes_lang::compile("
//!     resource Dec[2];
//!     or_tree AnyDec = first_of(
//!         { Dec[0] @ -1 },
//!         { Dec[0] @ -1 },   // copy-paste duplicate
//!         { Dec[1] @ -1 });
//!     class alu { constraint = AnyDec; }
//! ").unwrap();
//!
//! let report = optimize(&mut spec, &PipelineConfig::full());
//! assert_eq!(report.redundancy.unwrap().options_merged, 1);
//! assert_eq!(spec.num_options(), 2);
//! // After the forward shift, decode usages sit at time zero.
//! assert!(spec.option_ids().all(|id| spec.option(id).usages[0].time == 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dominance;
pub mod expand;
pub mod factor;
pub mod minimize;
pub mod pipeline;
pub mod redundancy;
pub mod report;
pub mod sortzero;
pub mod timeshift;
pub mod treesort;

pub use dominance::eliminate_dominated_options;
pub use expand::expand_to_or;
pub use factor::factor_common_usages;
pub use minimize::minimize_usages;
pub use pipeline::{
    optimize, optimized, run_stage, stage_plan, PipelineConfig, PipelineReport, StageId,
};
pub use redundancy::eliminate_redundancy;
pub use report::{staged_report, StageSnapshot};
pub use sortzero::sort_checks_zero_first;
pub use timeshift::{shift_usage_times, Direction};
pub use treesort::sort_and_or_trees;
