//! Stage-by-stage pipeline reporting.
//!
//! [`staged_report`] runs the transformation pipeline one stage at a time
//! and snapshots the compiled footprint after each — the data behind the
//! `mdesc stats` command and the `optimize_pipeline` example, and a
//! compact way to see where each of the paper's transformations earns its
//! keep on a given description.

use mdes_core::size::measure;
use mdes_core::spec::MdesSpec;
use mdes_core::{CompiledMdes, MdesError, UsageEncoding};

use crate::dominance::eliminate_dominated_options;
use crate::factor::factor_common_usages;
use crate::redundancy::eliminate_redundancy;
use crate::sortzero::sort_checks_zero_first;
use crate::timeshift::{shift_usage_times, Direction};
use crate::treesort::sort_and_or_trees;

/// One snapshot of the compiled footprint after a pipeline stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Stage label (e.g. `"redundancy elimination"`).
    pub stage: String,
    /// Usage encoding the snapshot was measured under.
    pub encoding: UsageEncoding,
    /// Options in the compiled pool.
    pub options: usize,
    /// Bytes under the paper's 4-byte-word memory model.
    pub bytes: usize,
    /// Stored RU-map probes.
    pub checks: usize,
}

fn snapshot(
    stage: &str,
    spec: &MdesSpec,
    encoding: UsageEncoding,
) -> Result<StageSnapshot, MdesError> {
    let compiled = CompiledMdes::compile(spec, encoding)?;
    let memory = measure(&compiled);
    Ok(StageSnapshot {
        stage: stage.to_string(),
        encoding,
        options: memory.num_options,
        bytes: memory.total(),
        checks: memory.num_checks,
    })
}

/// Runs the full pipeline stage by stage on a copy of `spec`, returning a
/// snapshot after every stage (the first entry is the description as
/// authored, under the scalar encoding; bit-vector snapshots follow the
/// Section-6 step).
///
/// # Examples
///
/// ```
/// let spec = mdes_lang::compile("
///     resource D[2];
///     or_tree T = first_of({ D[0] @ 0 }, { D[0] @ 0 }, { D[1] @ 0 });
///     class alu { constraint = T; }
/// ").unwrap();
/// let stages = mdes_opt::staged_report(&spec, mdes_opt::Direction::Forward).unwrap();
/// assert_eq!(stages.first().unwrap().options, 3);
/// // The duplicate option is merged and the dominated reference removed.
/// assert!(stages.last().unwrap().options < 3);
/// ```
pub fn staged_report(
    spec: &MdesSpec,
    direction: Direction,
) -> Result<Vec<StageSnapshot>, MdesError> {
    let mut spec = spec.clone();
    let mut stages = Vec::with_capacity(8);

    stages.push(snapshot("as authored", &spec, UsageEncoding::Scalar)?);

    let redundancy = eliminate_redundancy(&mut spec);
    stages.push(snapshot(
        &format!("redundancy elimination ({} removed)", redundancy.total()),
        &spec,
        UsageEncoding::Scalar,
    )?);

    let dominance = eliminate_dominated_options(&mut spec);
    stages.push(snapshot(
        &format!("dominated options ({} removed)", dominance.options_removed),
        &spec,
        UsageEncoding::Scalar,
    )?);

    stages.push(snapshot(
        "bit-vector encoding",
        &spec,
        UsageEncoding::BitVector,
    )?);

    let shift = shift_usage_times(&mut spec, direction);
    stages.push(snapshot(
        &format!("usage-time shift ({} resources)", shift.resources_shifted()),
        &spec,
        UsageEncoding::BitVector,
    )?);

    let sort = sort_checks_zero_first(&mut spec, direction);
    stages.push(snapshot(
        &format!(
            "zero-first check order ({} options)",
            sort.options_reordered
        ),
        &spec,
        UsageEncoding::BitVector,
    )?);

    let trees = sort_and_or_trees(&mut spec);
    stages.push(snapshot(
        &format!("AND/OR ordering ({} trees)", trees.trees_reordered),
        &spec,
        UsageEncoding::BitVector,
    )?);

    let factor = factor_common_usages(&mut spec);
    if factor.trees_affected > 0 {
        eliminate_redundancy(&mut spec);
        sort_checks_zero_first(&mut spec, direction);
        sort_and_or_trees(&mut spec);
    }
    stages.push(snapshot(
        &format!(
            "common-usage factoring ({} merged, {} created)",
            factor.usages_merged, factor.trees_created
        ),
        &spec,
        UsageEncoding::BitVector,
    )?);

    Ok(stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::spec::{Constraint, Latency, OpFlags, OrTree, TableOption};
    use mdes_core::usage::ResourceUsage;
    use mdes_core::ResourceId;

    fn messy_spec() -> MdesSpec {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("r", 3).unwrap();
        let u = |r: usize, t: i32| ResourceUsage::new(ResourceId::from_index(r), t);
        let a = spec.add_option(TableOption::new(vec![u(0, -1), u(1, 0)]));
        let a_dup = spec.add_option(TableOption::new(vec![u(0, -1), u(1, 0)]));
        let b = spec.add_option(TableOption::new(vec![u(2, 1)]));
        let tree = spec.add_or_tree(OrTree::new(vec![a, a_dup, b]));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        spec
    }

    #[test]
    fn report_covers_every_stage_in_order() {
        let stages = staged_report(&messy_spec(), Direction::Forward).unwrap();
        assert_eq!(stages.len(), 8);
        assert_eq!(stages[0].stage, "as authored");
        assert!(stages[1].stage.starts_with("redundancy"));
        assert!(stages[3].stage.contains("bit-vector"));
        assert!(stages.last().unwrap().stage.contains("factoring"));
    }

    #[test]
    fn bytes_never_increase_along_the_pipeline() {
        // Within each encoding regime bytes are monotone non-increasing;
        // the scalar → bit-vector step also only shrinks.
        let stages = staged_report(&messy_spec(), Direction::Forward).unwrap();
        for window in stages.windows(2) {
            assert!(
                window[1].bytes <= window[0].bytes,
                "{} grew: {} -> {}",
                window[1].stage,
                window[0].bytes,
                window[1].bytes
            );
        }
    }

    #[test]
    fn original_spec_is_untouched() {
        let spec = messy_spec();
        let before = spec.clone();
        let _ = staged_report(&spec, Direction::Forward);
        assert_eq!(spec, before);
    }

    #[test]
    fn works_for_backward_direction_too() {
        let stages = staged_report(&messy_spec(), Direction::Backward).unwrap();
        assert_eq!(stages.len(), 8);
    }
}
