//! The resource usage-time transformation (Section 7, Figure 5).
//!
//! For each resource, a strategically selected constant is subtracted from
//! its usage times in *every* reservation-table option.  By the
//! collision-vector argument (see `mdes_core::collision`), only the
//! *differences* between usage times of a common resource matter, so this
//! never changes which schedules are legal — but it concentrates usages at
//! time zero, which:
//!
//! * makes bit-vector packing effective (usages land in the same word);
//! * concentrates conflicts at time zero, so checking time zero first
//!   detects conflicts almost immediately.
//!
//! The paper's heuristic: for a forward-scheduling list scheduler pick the
//! constant as the *earliest* usage time of the resource across all
//! options (so its earliest usage becomes zero); for a backward scheduler
//! pick the *latest*.

use std::collections::HashMap;

use mdes_core::spec::MdesSpec;
use mdes_core::ResourceId;

/// Scheduler direction, which selects the shift heuristic.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Forward cycle scheduling: earliest usage per resource becomes 0.
    #[default]
    Forward,
    /// Backward cycle scheduling: latest usage per resource becomes 0.
    Backward,
}

/// Report of one usage-time transformation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimeShiftReport {
    /// Per-resource constants that were subtracted.
    pub shifts: Vec<(ResourceId, i32)>,
}

impl TimeShiftReport {
    /// Number of resources whose usages actually moved.
    pub fn resources_shifted(&self) -> usize {
        self.shifts.iter().filter(|(_, s)| *s != 0).count()
    }
}

/// Computes the per-resource shift constants without applying them.
pub fn shift_constants(spec: &MdesSpec, direction: Direction) -> HashMap<ResourceId, i32> {
    let mut constants: HashMap<ResourceId, i32> = HashMap::new();
    for id in spec.option_ids() {
        for usage in &spec.option(id).usages {
            let entry = constants.entry(usage.resource).or_insert(usage.time);
            match direction {
                Direction::Forward => *entry = (*entry).min(usage.time),
                Direction::Backward => *entry = (*entry).max(usage.time),
            }
        }
    }
    constants
}

/// Applies the usage-time transformation in place.
///
/// After a [`Direction::Forward`] run every resource's earliest usage time
/// is zero (so all usage times are ≥ 0); after a backward run every
/// resource's latest usage time is zero (times ≤ 0).
///
/// # Examples
///
/// ```
/// use mdes_opt::timeshift::{shift_usage_times, Direction};
///
/// let mut spec = mdes_lang::compile("
///     resource Dec;
///     resource Wr;
///     or_tree T = first_of({ Dec @ -1, Wr @ 1 });
///     class alu { constraint = T; }
/// ").unwrap();
/// let report = shift_usage_times(&mut spec, Direction::Forward);
/// assert_eq!(report.resources_shifted(), 2);
/// // Decode (-1) and write-back (+1) usages both land at time 0.
/// let opt = spec.option_ids().next().unwrap();
/// assert!(spec.option(opt).usages.iter().all(|u| u.time == 0));
/// ```
pub fn shift_usage_times(spec: &mut MdesSpec, direction: Direction) -> TimeShiftReport {
    let constants = shift_constants(spec, direction);
    for id in spec.option_ids().collect::<Vec<_>>() {
        for usage in &mut spec.option_mut(id).usages {
            if let Some(&constant) = constants.get(&usage.resource) {
                usage.time -= constant;
            }
        }
    }
    let mut shifts: Vec<(ResourceId, i32)> = constants.into_iter().collect();
    shifts.sort_unstable_by_key(|(r, _)| *r);
    TimeShiftReport { shifts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::collision::forbidden_latencies;
    use mdes_core::spec::{Constraint, Latency, OpFlags, OrTree, TableOption};
    use mdes_core::usage::ResourceUsage;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    /// Figure-3a-style spec: decoder at -1, M at 0, write port at 1.
    fn load_spec() -> MdesSpec {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("Dec").unwrap();
        spec.resources_mut().add("M").unwrap();
        spec.resources_mut().add("WrPt").unwrap();
        let opt = spec.add_option(TableOption::new(vec![u(0, -1), u(1, 0), u(2, 1)]));
        let tree = spec.add_or_tree(OrTree::new(vec![opt]));
        spec.add_class(
            "load",
            Constraint::Or(tree),
            Latency::new(1),
            OpFlags::load(),
        )
        .unwrap();
        spec
    }

    #[test]
    fn forward_shift_moves_every_resource_to_time_zero() {
        let mut spec = load_spec();
        let report = shift_usage_times(&mut spec, Direction::Forward);
        let usages = &spec.option(spec.option_ids().next().unwrap()).usages;
        // All three usages now at their per-resource zero — the Figure 5
        // effect: one usage per resource, all at time 0.
        assert!(usages.iter().all(|us| us.time == 0));
        assert_eq!(report.resources_shifted(), 2); // Dec (-1) and WrPt (+1)
    }

    #[test]
    fn backward_shift_moves_latest_usages_to_zero() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("Div").unwrap();
        let opt = spec.add_option(TableOption::new(vec![u(0, 0), u(0, 1), u(0, 2)]));
        let tree = spec.add_or_tree(OrTree::new(vec![opt]));
        spec.add_class(
            "div",
            Constraint::Or(tree),
            Latency::new(3),
            OpFlags::none(),
        )
        .unwrap();
        shift_usage_times(&mut spec, Direction::Backward);
        let times: Vec<i32> = spec
            .option(spec.option_ids().next().unwrap())
            .usages
            .iter()
            .map(|us| us.time)
            .collect();
        assert_eq!(times, vec![-2, -1, 0]);
    }

    #[test]
    fn shift_constant_is_global_across_options_of_all_classes() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("r").unwrap();
        // Class A uses r at time 2; class B uses r at time 5.  The
        // constant must be the global earliest (2) — shifting per class
        // would break cross-class collision vectors.
        let a = spec.add_option(TableOption::new(vec![u(0, 2)]));
        let b = spec.add_option(TableOption::new(vec![u(0, 5)]));
        let ta = spec.add_or_tree(OrTree::new(vec![a]));
        let tb = spec.add_or_tree(OrTree::new(vec![b]));
        spec.add_class("a", Constraint::Or(ta), Latency::new(1), OpFlags::none())
            .unwrap();
        spec.add_class("b", Constraint::Or(tb), Latency::new(1), OpFlags::none())
            .unwrap();
        shift_usage_times(&mut spec, Direction::Forward);
        let times: Vec<i32> = spec
            .option_ids()
            .map(|id| spec.option(id).usages[0].time)
            .collect();
        assert_eq!(times, vec![0, 3]);
    }

    #[test]
    fn collision_vectors_are_preserved() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("r", 3).unwrap();
        let a = spec.add_option(TableOption::new(vec![u(0, -1), u(1, 0), u(2, 4)]));
        let b = spec.add_option(TableOption::new(vec![u(0, 2), u(2, 3)]));
        let tree = spec.add_or_tree(OrTree::new(vec![a, b]));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();

        let ids: Vec<_> = spec.option_ids().collect();
        let matrix = |s: &MdesSpec| -> Vec<_> {
            ids.iter()
                .flat_map(|&x| {
                    ids.iter()
                        .map(|&y| forbidden_latencies(s.option(x), s.option(y)))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let before = matrix(&spec);

        let mut shifted = spec.clone();
        shift_usage_times(&mut shifted, Direction::Forward);
        let after = matrix(&shifted);

        assert_eq!(before, after);
    }

    #[test]
    fn forward_shift_is_idempotent() {
        let mut spec = load_spec();
        shift_usage_times(&mut spec, Direction::Forward);
        let snapshot = spec.clone();
        let report = shift_usage_times(&mut spec, Direction::Forward);
        assert_eq!(report.resources_shifted(), 0);
        assert_eq!(spec, snapshot);
    }

    #[test]
    fn unused_resources_are_untouched() {
        let mut spec = load_spec();
        spec.resources_mut().add("idle").unwrap();
        let report = shift_usage_times(&mut spec, Direction::Forward);
        assert!(report
            .shifts
            .iter()
            .all(|(r, _)| spec.resources().name(*r) != "idle"));
    }
}
