//! Redundancy elimination (Section 5).
//!
//! As machine descriptions evolve, "the amount of redundant and unused
//! information in the MDES tends to grow, because … it is typically easier
//! to just make a local copy of the information to be changed."  This pass
//! adapts the classical compiler optimizations the paper names:
//!
//! * **common-subexpression elimination + copy propagation** — structurally
//!   identical reservation-table options, OR-trees and AND/OR-trees are
//!   merged so every reference points at one canonical copy;
//! * **dead-code removal** — items no longer referenced by any operation
//!   class are deleted.
//!
//! Options are compared by exact usage *sequence* (not just set) so the
//! check order chosen by later transformations is never perturbed.

use std::collections::HashMap;

use mdes_core::spec::{AndOrTreeId, MdesSpec, OptionId, OrTreeId};

/// What one redundancy-elimination run merged and swept.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RedundancyReport {
    /// Duplicate options now sharing a canonical copy.
    pub options_merged: usize,
    /// Duplicate OR-trees now sharing a canonical copy.
    pub or_trees_merged: usize,
    /// Duplicate AND/OR-trees now sharing a canonical copy.
    pub and_or_trees_merged: usize,
    /// Items removed by the dead-code sweep.
    pub items_swept: usize,
}

impl RedundancyReport {
    /// Total redundant items eliminated.
    pub fn total(&self) -> usize {
        // Merged duplicates are subsequently swept, so `items_swept`
        // already includes them; report it as the authoritative total.
        self.items_swept
    }
}

/// Merges structurally identical MDES items and sweeps unreferenced ones.
///
/// Merging is a fixpoint by construction: options are canonicalized first,
/// which makes duplicate OR-trees textually identical, which in turn makes
/// duplicate AND/OR-trees identical.
///
/// # Examples
///
/// ```
/// let mut spec = mdes_lang::compile("
///     resource M;
///     or_tree T = first_of({ M @ 0 }, { M @ 0 }, { M @ 1 }); // copy-paste dup
///     class mem { constraint = T; }
/// ").unwrap();
/// let report = mdes_opt::eliminate_redundancy(&mut spec);
/// assert_eq!(report.options_merged, 1);
/// assert_eq!(spec.num_options(), 2);
/// ```
pub fn eliminate_redundancy(spec: &mut MdesSpec) -> RedundancyReport {
    let mut report = RedundancyReport::default();

    // --- Options: canonical = first structurally identical option. ---
    let mut canon_by_shape: HashMap<Vec<mdes_core::ResourceUsage>, OptionId> = HashMap::new();
    let mut option_map: Vec<OptionId> = Vec::with_capacity(spec.num_options());
    for id in spec.option_ids() {
        let shape = spec.option(id).usages.clone();
        match canon_by_shape.get(&shape) {
            Some(&canon) => {
                option_map.push(canon);
                report.options_merged += 1;
            }
            None => {
                canon_by_shape.insert(shape, id);
                option_map.push(id);
            }
        }
    }
    spec.rewrite_option_refs(|id| option_map[id.index()]);

    // --- OR-trees: compare by (rewritten) option lists. ---
    let mut canon_tree: HashMap<Vec<OptionId>, OrTreeId> = HashMap::new();
    let mut tree_map: Vec<OrTreeId> = Vec::with_capacity(spec.num_or_trees());
    for id in spec.or_tree_ids() {
        let shape = spec.or_tree(id).options.clone();
        match canon_tree.get(&shape) {
            Some(&canon) => {
                tree_map.push(canon);
                report.or_trees_merged += 1;
            }
            None => {
                canon_tree.insert(shape, id);
                tree_map.push(id);
            }
        }
    }
    spec.rewrite_or_tree_refs(|id| tree_map[id.index()]);

    // --- AND/OR-trees: compare by (rewritten) OR-tree lists. ---
    let mut canon_andor: HashMap<Vec<OrTreeId>, AndOrTreeId> = HashMap::new();
    let mut andor_map: Vec<AndOrTreeId> = Vec::with_capacity(spec.num_and_or_trees());
    for id in spec.and_or_tree_ids() {
        let shape = spec.and_or_tree(id).or_trees.clone();
        match canon_andor.get(&shape) {
            Some(&canon) => {
                andor_map.push(canon);
                report.and_or_trees_merged += 1;
            }
            None => {
                canon_andor.insert(shape, id);
                andor_map.push(id);
            }
        }
    }
    spec.rewrite_and_or_tree_refs(|id| andor_map[id.index()]);

    // --- Dead-code removal: sweep now-unreferenced duplicates and any
    // information the MDES never used in the first place. ---
    let sweep = spec.sweep_unreferenced();
    report.items_swept = sweep.total();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::spec::{AndOrTree, Constraint, Latency, OpFlags, OrTree, TableOption};
    use mdes_core::usage::ResourceUsage;
    use mdes_core::ResourceId;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    #[test]
    fn duplicate_options_are_merged_and_swept() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("r").unwrap();
        let a = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let b = spec.add_option(TableOption::new(vec![u(0, 0)])); // duplicate
        let tree = spec.add_or_tree(OrTree::new(vec![a, b]));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();

        let report = eliminate_redundancy(&mut spec);
        assert_eq!(report.options_merged, 1);
        assert_eq!(report.items_swept, 1);
        assert_eq!(spec.num_options(), 1);
        // The tree now references the canonical option twice (priority
        // semantics unchanged; dominance elimination handles the repeat).
        let tree = spec.or_tree(spec.or_tree_ids().next().unwrap());
        assert_eq!(tree.options[0], tree.options[1]);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn options_differing_only_in_order_are_not_merged() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("r", 2).unwrap();
        let a = spec.add_option(TableOption::new(vec![u(0, 0), u(1, 0)]));
        let b = spec.add_option(TableOption::new(vec![u(1, 0), u(0, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![a, b]));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        let report = eliminate_redundancy(&mut spec);
        assert_eq!(report.options_merged, 0);
        assert_eq!(spec.num_options(), 2);
    }

    #[test]
    fn duplicate_or_trees_cascade_into_and_or_merging() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("r", 2).unwrap();
        // Two structurally identical chains built with separate ids, as an
        // MDES author copy-pasting would produce.
        let o1 = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let o2 = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let t1 = spec.add_or_tree(OrTree::new(vec![o1]));
        let t2 = spec.add_or_tree(OrTree::new(vec![o2]));
        let a1 = spec.add_and_or_tree(AndOrTree::new(vec![t1]));
        let a2 = spec.add_and_or_tree(AndOrTree::new(vec![t2]));
        spec.add_class("x", Constraint::AndOr(a1), Latency::new(1), OpFlags::none())
            .unwrap();
        spec.add_class("y", Constraint::AndOr(a2), Latency::new(1), OpFlags::none())
            .unwrap();

        let report = eliminate_redundancy(&mut spec);
        assert_eq!(report.options_merged, 1);
        assert_eq!(report.or_trees_merged, 1);
        assert_eq!(report.and_or_trees_merged, 1);
        assert_eq!(spec.num_options(), 1);
        assert_eq!(spec.num_or_trees(), 1);
        assert_eq!(spec.num_and_or_trees(), 1);
        // Both classes now share everything.
        let cx = spec.class(spec.class_by_name("x").unwrap()).constraint;
        let cy = spec.class(spec.class_by_name("y").unwrap()).constraint;
        assert_eq!(cx, cy);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn unused_information_is_swept() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("r").unwrap();
        let live = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![live]));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        // An orphaned subtree the vocabulary no longer references.
        let dead_opt = spec.add_option(TableOption::new(vec![u(0, 7)]));
        let dead_tree = spec.add_or_tree(OrTree::new(vec![dead_opt]));
        spec.add_and_or_tree(AndOrTree::new(vec![dead_tree]));

        let report = eliminate_redundancy(&mut spec);
        assert_eq!(report.items_swept, 3);
        assert_eq!(spec.num_options(), 1);
        assert_eq!(spec.num_and_or_trees(), 0);
    }

    #[test]
    fn idempotent_on_clean_spec() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("r").unwrap();
        let opt = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![opt]));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        eliminate_redundancy(&mut spec);
        let before = spec.clone();
        let report = eliminate_redundancy(&mut spec);
        assert_eq!(report.total(), 0);
        assert_eq!(spec, before);
    }
}
