//! Common-usage factoring (Section 8, second transformation).
//!
//! "Remove resource usages that are common to all of the OR-tree options
//! and place them in an OR-tree with just one option (creating one if
//! necessary). … By pulling it out, this resource conflict can be detected
//! earlier."
//!
//! Applying it blindly can *increase* the number of checks, so the paper's
//! application heuristics are used:
//!
//! 1. if the AND/OR-tree already has a one-option OR-tree containing a
//!    usage at the same usage time as the common usage, merge the common
//!    usage into it — "with bit-vectors, this transformation cannot hurt
//!    performance" (the mask grows, the check count does not);
//! 2. otherwise, apply only if the common usage is the only usage at its
//!    usage time in each option (each option then loses a whole check and
//!    only one check is added).
//!
//! OR-trees and options are copied on write when shared, so factoring in
//! the context of one AND/OR-tree never perturbs other trees; a follow-up
//! redundancy pass re-merges anything that became identical.

use mdes_core::spec::{AndOrTreeId, MdesSpec, OrTree, OrTreeId, TableOption};
use mdes_core::usage::ResourceUsage;

/// What common-usage factoring changed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FactorReport {
    /// Common usages merged into an existing one-option OR-tree (rule 1).
    pub usages_merged: usize,
    /// New one-option OR-trees created (rule 2).
    pub trees_created: usize,
    /// AND/OR-trees affected.
    pub trees_affected: usize,
}

/// Applies common-usage factoring to every AND/OR-tree, using the paper's
/// application heuristics.
///
/// # Examples
///
/// ```
/// let mut spec = mdes_lang::compile("
///     resource Dec[2];
///     resource Bus;
///     resource M;
///     // Every decoder option also grabs the issue bus.
///     or_tree AnyDec = first_of(for d in 0..2: { Dec[d] @ 0, Bus @ 0 });
///     or_tree UseM   = first_of({ M @ 0 });
///     and_or_tree Load = all_of(AnyDec, UseM);
///     class load { constraint = Load; flags = load; }
/// ").unwrap();
/// let report = mdes_opt::factor_common_usages(&mut spec);
/// // Rule 1: the bus usage merges into the existing one-option M tree.
/// assert_eq!(report.usages_merged, 1);
/// ```
pub fn factor_common_usages(spec: &mut MdesSpec) -> FactorReport {
    let mut report = FactorReport::default();
    for andor in spec.and_or_tree_ids().collect::<Vec<_>>() {
        let mut affected = false;
        // Re-scan this AND/OR-tree until no factoring applies.
        loop {
            match find_factoring(spec, andor) {
                Some(Factoring::MergeIntoExisting {
                    source,
                    target,
                    usage,
                }) => {
                    apply_merge(spec, andor, source, target, usage);
                    report.usages_merged += 1;
                    affected = true;
                }
                Some(Factoring::CreateTree { source, usage }) => {
                    apply_create(spec, andor, source, usage);
                    report.trees_created += 1;
                    affected = true;
                }
                None => break,
            }
        }
        if affected {
            report.trees_affected += 1;
        }
    }
    report
}

/// A factoring opportunity within one AND/OR-tree.  Positions index the
/// tree's `or_trees` list.
enum Factoring {
    /// Rule 1: move `usage` out of the options at `source` into the single
    /// option of the tree at `target`.
    MergeIntoExisting {
        source: usize,
        target: usize,
        usage: ResourceUsage,
    },
    /// Rule 2: move `usage` into a freshly created one-option OR-tree.
    CreateTree { source: usize, usage: ResourceUsage },
}

fn find_factoring(spec: &MdesSpec, andor: AndOrTreeId) -> Option<Factoring> {
    let children = &spec.and_or_tree(andor).or_trees;
    for (pos, &tree_id) in children.iter().enumerate() {
        let tree = spec.or_tree(tree_id);
        if tree.options.len() < 2 {
            continue;
        }
        for usage in common_usages(spec, tree_id) {
            // Never factor a usage out of an option that consists of only
            // that usage: the option would become empty (meaning "no
            // resource needed"), which the representation forbids.
            if tree
                .options
                .iter()
                .any(|&opt| spec.option(opt).usages.len() == 1)
            {
                continue;
            }
            // Rule 1: an existing one-option OR-tree with a usage at the
            // same usage time.
            let target = children.iter().enumerate().position(|(q, &other)| {
                q != pos
                    && spec.or_tree(other).options.len() == 1
                    && spec
                        .option(spec.or_tree(other).options[0])
                        .usages
                        .iter()
                        .any(|u| u.time == usage.time)
            });
            if let Some(target) = target {
                return Some(Factoring::MergeIntoExisting {
                    source: pos,
                    target,
                    usage,
                });
            }
            // Rule 2: the common usage is the only usage at its time in
            // each option.
            let lone_at_time = tree.options.iter().all(|&opt| {
                spec.option(opt)
                    .usages
                    .iter()
                    .filter(|u| u.time == usage.time)
                    .count()
                    == 1
            });
            if lone_at_time {
                return Some(Factoring::CreateTree { source: pos, usage });
            }
        }
    }
    None
}

/// Usages present in every option of `tree_id`, in first-option order.
fn common_usages(spec: &MdesSpec, tree_id: OrTreeId) -> Vec<ResourceUsage> {
    let tree = spec.or_tree(tree_id);
    let first = match tree.options.first() {
        Some(&opt) => spec.option(opt).usages.clone(),
        None => return Vec::new(),
    };
    first
        .into_iter()
        .filter(|usage| {
            tree.options[1..]
                .iter()
                .all(|&opt| spec.option(opt).usages.contains(usage))
        })
        .collect()
}

fn apply_merge(
    spec: &mut MdesSpec,
    andor: AndOrTreeId,
    source: usize,
    target: usize,
    usage: ResourceUsage,
) {
    let source_tree = privatize_tree(spec, andor, source);
    let target_tree = privatize_tree(spec, andor, target);
    remove_usage_from_options(spec, source_tree, usage);
    let target_opt = spec.or_tree(target_tree).options[0];
    spec.option_mut(target_opt).usages.push(usage);
}

fn apply_create(spec: &mut MdesSpec, andor: AndOrTreeId, source: usize, usage: ResourceUsage) {
    let source_tree = privatize_tree(spec, andor, source);
    remove_usage_from_options(spec, source_tree, usage);
    let new_opt = spec.add_option(TableOption::new(vec![usage]));
    let new_tree = spec.add_or_tree(OrTree::new(vec![new_opt]));
    spec.and_or_tree_mut(andor).or_trees.push(new_tree);
}

fn remove_usage_from_options(spec: &mut MdesSpec, tree_id: OrTreeId, usage: ResourceUsage) {
    for opt in spec.or_tree(tree_id).options.clone() {
        let usages = &mut spec.option_mut(opt).usages;
        if let Some(idx) = usages.iter().position(|u| *u == usage) {
            usages.remove(idx);
        }
    }
}

/// Ensures the OR-tree at `position` of `andor`, and each of its options,
/// is referenced only from there — cloning whatever is shared — so
/// mutation cannot leak into other trees.  Returns the (possibly new)
/// tree id.
fn privatize_tree(spec: &mut MdesSpec, andor: AndOrTreeId, position: usize) -> OrTreeId {
    let mut tree_id = spec.and_or_tree(andor).or_trees[position];

    if spec.or_tree_share_counts()[tree_id.index()] > 1 {
        let cloned = spec.or_tree(tree_id).clone();
        tree_id = spec.add_or_tree(OrTree {
            name: cloned.name.map(|n| format!("{n}'")),
            options: cloned.options,
        });
        spec.and_or_tree_mut(andor).or_trees[position] = tree_id;
    }

    let ref_counts = option_ref_counts(spec);
    for slot in 0..spec.or_tree(tree_id).options.len() {
        let opt = spec.or_tree(tree_id).options[slot];
        if ref_counts[opt.index()] > 1 {
            let cloned = spec.option(opt).clone();
            let fresh = spec.add_option(cloned);
            spec.or_tree_mut(tree_id).options[slot] = fresh;
        }
    }
    tree_id
}

/// How many OR-tree slots reference each option.
fn option_ref_counts(spec: &MdesSpec) -> Vec<usize> {
    let mut counts = vec![0usize; spec.num_options()];
    for tree_id in spec.or_tree_ids() {
        for opt in &spec.or_tree(tree_id).options {
            counts[opt.index()] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::spec::{AndOrTree, Constraint, Latency, OpFlags, OptionId};
    use mdes_core::ResourceId;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    /// AND/OR-tree where every decoder option also uses the issue bus
    /// (r3) at time 0, and an existing one-option tree uses M (r4) at 0.
    fn rule1_spec() -> MdesSpec {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("Dec", 3).unwrap(); // r0..2
        spec.resources_mut().add("Bus").unwrap(); // r3
        spec.resources_mut().add("M").unwrap(); // r4
        let dec_opts: Vec<OptionId> = (0..3)
            .map(|d| spec.add_option(TableOption::new(vec![u(d, 0), u(3, 0)])))
            .collect();
        let dec = spec.add_or_tree(OrTree::named("AnyDec", dec_opts));
        let m_opt = spec.add_option(TableOption::new(vec![u(4, 0)]));
        let m = spec.add_or_tree(OrTree::named("UseM", vec![m_opt]));
        let andor = spec.add_and_or_tree(AndOrTree::named("Load", vec![dec, m]));
        spec.add_class(
            "load",
            Constraint::AndOr(andor),
            Latency::new(1),
            OpFlags::load(),
        )
        .unwrap();
        spec
    }

    #[test]
    fn rule1_merges_common_usage_into_existing_single_option_tree() {
        let mut spec = rule1_spec();
        let report = factor_common_usages(&mut spec);
        assert_eq!(report.usages_merged, 1);
        assert_eq!(report.trees_created, 0);

        let andor = spec
            .and_or_tree(spec.and_or_tree_ids().next().unwrap())
            .clone();
        // Decoder options no longer carry the bus usage.
        let dec = spec.or_tree(andor.or_trees[0]);
        for &opt in &dec.options {
            assert_eq!(spec.option(opt).usages.len(), 1);
        }
        // The single-option tree now requires M and Bus.
        let single = spec.or_tree(andor.or_trees[1]);
        let usages = &spec.option(single.options[0]).usages;
        assert!(usages.contains(&u(4, 0)));
        assert!(usages.contains(&u(3, 0)));
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn rule2_creates_new_tree_when_usage_is_lone_at_its_time() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("Dec", 2).unwrap(); // r0, r1
        spec.resources_mut().add("Bus").unwrap(); // r2
                                                  // Decoder usage at time 0, common bus usage at time 1 (lone at
                                                  // its time in each option).
        let opts: Vec<OptionId> = (0..2)
            .map(|d| spec.add_option(TableOption::new(vec![u(d, 0), u(2, 1)])))
            .collect();
        let dec = spec.add_or_tree(OrTree::new(opts));
        let andor = spec.add_and_or_tree(AndOrTree::new(vec![dec]));
        spec.add_class(
            "op",
            Constraint::AndOr(andor),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();

        let report = factor_common_usages(&mut spec);
        assert_eq!(report.trees_created, 1);
        let children = &spec.and_or_tree(andor).or_trees;
        assert_eq!(children.len(), 2);
        let new_tree = spec.or_tree(children[1]);
        assert_eq!(new_tree.options.len(), 1);
        assert_eq!(spec.option(new_tree.options[0]).usages, vec![u(2, 1)]);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn rule2_does_not_fire_when_usage_shares_its_cycle() {
        // Common usage at time 0, but each option also has its decoder at
        // time 0: removing it would not save a (bit-vector) check.
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("Dec", 2).unwrap();
        spec.resources_mut().add("Bus").unwrap();
        let opts: Vec<OptionId> = (0..2)
            .map(|d| spec.add_option(TableOption::new(vec![u(d, 0), u(2, 0)])))
            .collect();
        let dec = spec.add_or_tree(OrTree::new(opts));
        let andor = spec.add_and_or_tree(AndOrTree::new(vec![dec]));
        spec.add_class(
            "op",
            Constraint::AndOr(andor),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        let report = factor_common_usages(&mut spec);
        assert_eq!(report.trees_created, 0);
        assert_eq!(report.usages_merged, 0);
    }

    #[test]
    fn shared_or_tree_is_cloned_before_mutation() {
        // Two AND/OR-trees share the decoder tree; only one has a
        // single-option M tree to merge into.  The other must see its
        // decoder options unchanged.
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("Dec", 2).unwrap();
        spec.resources_mut().add("Bus").unwrap();
        spec.resources_mut().add("M").unwrap(); // r3
        let dec_opts: Vec<OptionId> = (0..2)
            .map(|d| spec.add_option(TableOption::new(vec![u(d, 0), u(2, 0)])))
            .collect();
        let dec = spec.add_or_tree(OrTree::new(dec_opts.clone()));
        let m_opt = spec.add_option(TableOption::new(vec![u(3, 0)]));
        let m = spec.add_or_tree(OrTree::new(vec![m_opt]));
        let with_m = spec.add_and_or_tree(AndOrTree::new(vec![dec, m]));
        let without_m = spec.add_and_or_tree(AndOrTree::new(vec![dec]));
        spec.add_class(
            "a",
            Constraint::AndOr(with_m),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        spec.add_class(
            "b",
            Constraint::AndOr(without_m),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();

        factor_common_usages(&mut spec);

        // The un-factored AND/OR-tree still sees the bus usage inside its
        // decoder options.
        let untouched = spec.or_tree(spec.and_or_tree(without_m).or_trees[0]);
        for &opt in &untouched.options {
            assert!(spec.option(opt).usages.contains(&u(2, 0)));
        }
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn single_usage_options_are_never_emptied() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("Bus").unwrap();
        spec.resources_mut().add("M").unwrap();
        // Both options consist solely of the common usage.
        let o1 = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let o2 = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![o1, o2]));
        let m_opt = spec.add_option(TableOption::new(vec![u(1, 0)]));
        let m = spec.add_or_tree(OrTree::new(vec![m_opt]));
        let andor = spec.add_and_or_tree(AndOrTree::new(vec![tree, m]));
        spec.add_class(
            "op",
            Constraint::AndOr(andor),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        let report = factor_common_usages(&mut spec);
        assert_eq!(report.usages_merged + report.trees_created, 0);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn factoring_terminates_and_is_idempotent() {
        let mut spec = rule1_spec();
        factor_common_usages(&mut spec);
        let snapshot = spec.clone();
        let report = factor_common_usages(&mut spec);
        assert_eq!(report.trees_affected, 0);
        assert_eq!(spec, snapshot);
    }
}
