//! AND/OR → OR expansion.
//!
//! Rewrites every AND/OR constraint into the traditional representation:
//! one OR-tree whose options are the lexicographic cross product of the
//! sub-OR-trees' options (first sub-tree outermost), each option's usages
//! concatenated in sub-tree order.
//!
//! This is the "MDES preprocessor that expanded out each AND/OR-tree
//! specification into the corresponding OR-tree specification" the paper
//! uses to generate the OR-tree baseline for every experiment (Section 4).
//! When the sub-OR-trees of each AND/OR-tree use disjoint resources — true
//! for all four machine models, and verified by the integration tests —
//! the expanded description schedules identically.

use mdes_core::spec::{Constraint, MdesSpec, OptionId, OrTree, TableOption};
use mdes_core::usage::ResourceUsage;

/// Report of one expansion.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExpandReport {
    /// AND/OR-trees expanded.
    pub trees_expanded: usize,
    /// Cross-product options created.
    pub options_created: usize,
}

/// Returns a copy of `spec` with every AND/OR constraint expanded into the
/// equivalent OR-tree, plus the expansion report.
///
/// Classes sharing one AND/OR-tree share the expanded OR-tree, mirroring
/// the author-specified sharing of the original description.
///
/// # Examples
///
/// ```
/// let spec = mdes_lang::compile("
///     resource D[3];
///     resource W[2];
///     or_tree AnyD = first_of(for d in 0..3: { D[d] @ -1 });
///     or_tree AnyW = first_of(for w in 0..2: { W[w] @ 1 });
///     and_or_tree Load = all_of(AnyW, AnyD);
///     class load { constraint = Load; flags = load; }
/// ").unwrap();
/// let (expanded, report) = mdes_opt::expand_to_or(&spec);
/// assert_eq!(report.options_created, 6); // 2 x 3 reservation tables
/// assert_eq!(expanded.num_and_or_trees(), 0);
/// ```
pub fn expand_to_or(spec: &MdesSpec) -> (MdesSpec, ExpandReport) {
    let mut out = spec.clone();
    let mut report = ExpandReport::default();

    // Expanded OR-tree per AND/OR-tree id (shared across classes).
    let mut expansion: Vec<Option<mdes_core::OrTreeId>> = vec![None; spec.num_and_or_trees()];

    for class_id in spec.class_ids().collect::<Vec<_>>() {
        let Constraint::AndOr(andor) = out.class(class_id).constraint else {
            continue;
        };
        let or_tree = match expansion[andor.index()] {
            Some(existing) => existing,
            None => {
                let children = out.and_or_tree(andor).or_trees.clone();
                let mut combos: Vec<Vec<ResourceUsage>> = vec![Vec::new()];
                for child in &children {
                    let options: Vec<OptionId> = out.or_tree(*child).options.clone();
                    let mut next = Vec::with_capacity(combos.len() * options.len());
                    for prefix in &combos {
                        for opt in &options {
                            let mut usages = prefix.clone();
                            usages.extend_from_slice(&out.option(*opt).usages);
                            next.push(usages);
                        }
                    }
                    combos = next;
                }
                report.options_created += combos.len();
                let option_ids: Vec<OptionId> = combos
                    .into_iter()
                    .map(|usages| out.add_option(TableOption::new(usages)))
                    .collect();
                let name = out
                    .and_or_tree(andor)
                    .name
                    .clone()
                    .map(|n| format!("{n}_expanded"));
                let tree = out.add_or_tree(OrTree {
                    name,
                    options: option_ids,
                });
                expansion[andor.index()] = Some(tree);
                report.trees_expanded += 1;
                tree
            }
        };
        out.class_mut(class_id).constraint = Constraint::Or(or_tree);
    }

    // The AND/OR-trees and their (now possibly unshared) pieces are dead.
    out.sweep_unreferenced();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::spec::{AndOrTree, Latency, OpFlags};
    use mdes_core::ResourceId;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    fn andor_spec() -> MdesSpec {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("D", 2).unwrap(); // r0, r1
        spec.resources_mut().add_indexed("W", 3).unwrap(); // r2..r4
        let d_opts: Vec<OptionId> = (0..2)
            .map(|d| spec.add_option(TableOption::new(vec![u(d, -1)])))
            .collect();
        let d = spec.add_or_tree(OrTree::named("D", d_opts));
        let w_opts: Vec<OptionId> = (2..5)
            .map(|w| spec.add_option(TableOption::new(vec![u(w, 1)])))
            .collect();
        let w = spec.add_or_tree(OrTree::named("W", w_opts));
        let andor = spec.add_and_or_tree(AndOrTree::named("Op", vec![d, w]));
        spec.add_class(
            "op",
            Constraint::AndOr(andor),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        spec
    }

    #[test]
    fn expansion_builds_lexicographic_cross_product() {
        let (expanded, report) = expand_to_or(&andor_spec());
        assert_eq!(report.trees_expanded, 1);
        assert_eq!(report.options_created, 6);

        let class = expanded.class_by_name("op").unwrap();
        let Constraint::Or(tree_id) = expanded.class(class).constraint else {
            panic!("expected OR constraint after expansion");
        };
        let tree = expanded.or_tree(tree_id);
        assert_eq!(tree.options.len(), 6);
        // First option: D[0] + W[0]; options vary W fastest.
        let first = expanded.option(tree.options[0]);
        assert_eq!(first.usages, vec![u(0, -1), u(2, 1)]);
        let second = expanded.option(tree.options[1]);
        assert_eq!(second.usages, vec![u(0, -1), u(3, 1)]);
        let fourth = expanded.option(tree.options[3]);
        assert_eq!(fourth.usages, vec![u(1, -1), u(2, 1)]);
    }

    #[test]
    fn expansion_sweeps_the_and_or_layer() {
        let (expanded, _) = expand_to_or(&andor_spec());
        assert_eq!(expanded.num_and_or_trees(), 0);
        assert!(expanded.validate().is_ok());
        // 6 cross options remain; the 5 building-block options are dead.
        assert_eq!(expanded.num_options(), 6);
    }

    #[test]
    fn classes_sharing_an_and_or_tree_share_the_expansion() {
        let mut spec = andor_spec();
        let andor = spec.and_or_tree_ids().next().unwrap();
        spec.add_class(
            "op2",
            Constraint::AndOr(andor),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        let (expanded, report) = expand_to_or(&spec);
        assert_eq!(report.trees_expanded, 1);
        let c1 = expanded
            .class(expanded.class_by_name("op").unwrap())
            .constraint;
        let c2 = expanded
            .class(expanded.class_by_name("op2").unwrap())
            .constraint;
        assert_eq!(c1, c2);
    }

    #[test]
    fn or_only_spec_is_unchanged() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("r").unwrap();
        let opt = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![opt]));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        let (expanded, report) = expand_to_or(&spec);
        assert_eq!(report.trees_expanded, 0);
        assert_eq!(report.options_created, 0);
        assert_eq!(expanded, spec);
    }

    #[test]
    fn option_counts_match_class_option_count() {
        let spec = andor_spec();
        let class = spec.class_by_name("op").unwrap();
        let before = spec.class_option_count(class);
        let (expanded, _) = expand_to_or(&spec);
        let after = expanded.class_option_count(expanded.class_by_name("op").unwrap());
        assert_eq!(before, after);
    }
}
