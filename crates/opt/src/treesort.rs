//! AND/OR-tree conflict-detection ordering (Section 8, Figure 6).
//!
//! Sorts the sub-OR-trees of every AND/OR-tree so the tree most likely to
//! have a resource conflict is checked first, using the paper's
//! heuristic sort criteria:
//!
//! 1. earliest usage time in each OR-tree (after the usage-time
//!    transformation, most conflicts occur at usage time zero);
//! 2. fewest options (a one-option OR-tree on a contended resource fails
//!    fastest);
//! 3. shared by the most AND/OR-trees ("this gives an indication of which
//!    OR-trees have resources that are heavily used");
//! 4. the original order, to break remaining ties (stable sort).

use mdes_core::spec::MdesSpec;

/// Report of one AND/OR-tree ordering pass.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TreeSortReport {
    /// AND/OR-trees whose sub-tree order changed.
    pub trees_reordered: usize,
}

/// Sorts the sub-OR-trees of every AND/OR-tree by the paper's criteria.
///
/// # Examples
///
/// ```
/// let mut spec = mdes_lang::compile("
///     resource Dec[3];
///     resource M;
///     or_tree AnyDec = first_of(for d in 0..3: { Dec[d] @ 0 });
///     or_tree UseM   = first_of({ M @ 0 });
///     and_or_tree Load = all_of(AnyDec, UseM);  // authored decoder-first
///     class load { constraint = Load; flags = load; }
/// ").unwrap();
/// let report = mdes_opt::sort_and_or_trees(&mut spec);
/// assert_eq!(report.trees_reordered, 1);
/// // The one-option memory tree is now checked first (Figure 6).
/// let andor = spec.and_or_tree_ids().next().unwrap();
/// let first = spec.and_or_tree(andor).or_trees[0];
/// assert_eq!(spec.or_tree(first).options.len(), 1);
/// ```
pub fn sort_and_or_trees(spec: &mut MdesSpec) -> TreeSortReport {
    let share_counts = spec.or_tree_share_counts();

    // Pre-compute per-OR-tree sort keys.
    let keys: Vec<(i32, usize, isize)> = spec
        .or_tree_ids()
        .map(|id| {
            let tree = spec.or_tree(id);
            let earliest = tree
                .options
                .iter()
                .filter_map(|&opt| spec.option(opt).earliest_time())
                .min()
                .unwrap_or(i32::MAX);
            let num_options = tree.options.len();
            let shared = -(share_counts[id.index()] as isize); // more shared first
            (earliest, num_options, shared)
        })
        .collect();

    let mut report = TreeSortReport::default();
    for id in spec.and_or_tree_ids().collect::<Vec<_>>() {
        let children = &mut spec.and_or_tree_mut(id).or_trees;
        let before = children.clone();
        children.sort_by_key(|or| keys[or.index()]);
        if *children != before {
            report.trees_reordered += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::spec::{AndOrTree, Constraint, Latency, OpFlags, OrTree, OrTreeId, TableOption};
    use mdes_core::usage::ResourceUsage;
    use mdes_core::ResourceId;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    /// Builds the Figure-6 situation: decoder tree (3 options, time 0)
    /// listed before M (1 option, time 0) and write-port tree (2 options,
    /// time 1); sorting must yield M, decoders, write ports?  No — the
    /// paper sorts by earliest time first, then option count: M (t=0, 1
    /// option), Decoder (t=0, 3 options), WrPt (t=1, 2 options).
    fn figure6_spec() -> (MdesSpec, OrTreeId, OrTreeId, OrTreeId) {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("Dec", 3).unwrap(); // r0..r2
        spec.resources_mut().add("M").unwrap(); // r3
        spec.resources_mut().add_indexed("WrPt", 2).unwrap(); // r4..r5

        let dec_opts: Vec<_> = (0..3)
            .map(|d| spec.add_option(TableOption::new(vec![u(d, 0)])))
            .collect();
        let dec = spec.add_or_tree(OrTree::named("AnyDec", dec_opts));

        let wr_opts: Vec<_> = (4..6)
            .map(|w| spec.add_option(TableOption::new(vec![u(w, 1)])))
            .collect();
        let wr = spec.add_or_tree(OrTree::named("AnyWr", wr_opts));

        let m_opt = spec.add_option(TableOption::new(vec![u(3, 0)]));
        let m = spec.add_or_tree(OrTree::named("UseM", vec![m_opt]));

        let andor = spec.add_and_or_tree(AndOrTree::named("Load", vec![dec, wr, m]));
        spec.add_class(
            "load",
            Constraint::AndOr(andor),
            Latency::new(1),
            OpFlags::load(),
        )
        .unwrap();
        (spec, dec, wr, m)
    }

    #[test]
    fn sorts_by_earliest_time_then_fewest_options() {
        let (mut spec, dec, wr, m) = figure6_spec();
        let report = sort_and_or_trees(&mut spec);
        assert_eq!(report.trees_reordered, 1);
        let order = &spec
            .and_or_tree(spec.and_or_tree_ids().next().unwrap())
            .or_trees;
        // M first (t=0, 1 option), then decoders (t=0, 3 options), then
        // write ports (t=1).
        assert_eq!(order, &vec![m, dec, wr]);
    }

    #[test]
    fn share_count_breaks_ties() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("r", 4).unwrap();
        // Two OR-trees with equal earliest time and option count; `shared`
        // is referenced by two AND/OR-trees, `solo` by one.
        let s0 = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let s1 = spec.add_option(TableOption::new(vec![u(1, 0)]));
        let shared = spec.add_or_tree(OrTree::new(vec![s0, s1]));
        let p0 = spec.add_option(TableOption::new(vec![u(2, 0)]));
        let p1 = spec.add_option(TableOption::new(vec![u(3, 0)]));
        let solo = spec.add_or_tree(OrTree::new(vec![p0, p1]));

        let main = spec.add_and_or_tree(AndOrTree::new(vec![solo, shared]));
        let other = spec.add_and_or_tree(AndOrTree::new(vec![shared]));
        spec.add_class(
            "a",
            Constraint::AndOr(main),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        spec.add_class(
            "b",
            Constraint::AndOr(other),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();

        sort_and_or_trees(&mut spec);
        let order = &spec.and_or_tree(main).or_trees;
        assert_eq!(order, &vec![shared, solo]);
    }

    #[test]
    fn original_order_breaks_remaining_ties() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("r", 2).unwrap();
        let a = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let b = spec.add_option(TableOption::new(vec![u(1, 0)]));
        let ta = spec.add_or_tree(OrTree::new(vec![a]));
        let tb = spec.add_or_tree(OrTree::new(vec![b]));
        let andor = spec.add_and_or_tree(AndOrTree::new(vec![tb, ta]));
        spec.add_class(
            "op",
            Constraint::AndOr(andor),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        let report = sort_and_or_trees(&mut spec);
        // Identical keys: stable sort keeps the specified order.
        assert_eq!(report.trees_reordered, 0);
        assert_eq!(spec.and_or_tree(andor).or_trees, vec![tb, ta]);
    }

    #[test]
    fn sort_is_idempotent() {
        let (mut spec, ..) = figure6_spec();
        sort_and_or_trees(&mut spec);
        let snapshot = spec.clone();
        let report = sort_and_or_trees(&mut spec);
        assert_eq!(report.trees_reordered, 0);
        assert_eq!(spec, snapshot);
    }
}
